"""Edge-peeling reductions on the compiled kernel.

Bitset/CSR ports of the two support-based reductions (Algorithm 1 / Lemma 3
and Lemma 4).  The dict implementations spend most of their time hashing
vertex ids — every edge key is built by comparing ``str(u)``/``str(v)`` and
every common-neighbour enumeration walks Python sets.  Here an edge key is a
plain ``(min, max)`` int pair, the common neighbourhood of an edge is one
``&`` of two adjacency bitsets, and edge removal is two ``&= ~bit`` updates.

Both peels reach the same fixed point as their dict counterparts (the
survival conditions are monotone in the edge set, so the maximal surviving
subgraph is unique) — asserted by the parity suite.
"""

from __future__ import annotations

from collections import deque

from repro.kernel.bitops import bits_list, iter_bits, mask_above
from repro.kernel.compile import GraphKernel
from repro.reduction.enhanced_support import (
    _EdgeGroups,
    edge_satisfies_enhanced_support,
)

EdgePair = tuple[int, int]


def _thresholds(code_u: int, code_v: int, k: int) -> tuple[int, int]:
    """The ``(need_a, need_b)`` demands of Lemma 3 by endpoint attribute codes.

    Attribute code 0 is ``attribute_a`` (the kernel sorts attribute values the
    same way :func:`validate_binary_attributes` does), so this mirrors
    :func:`repro.reduction.colorful_support.support_thresholds` exactly.
    """
    if code_u == code_v:
        if code_u == 0:
            need_a, need_b = k - 2, k
        else:
            need_a, need_b = k, k - 2
    else:
        need_a, need_b = k - 1, k - 1
    return max(need_a, 0), max(need_b, 0)


def _edges(adj: list[int], n: int) -> list[EdgePair]:
    pairs: list[EdgePair] = []
    append = pairs.append
    for u in range(n):
        higher = adj[u] & mask_above(u)
        while higher:
            low = higher & -higher
            append((u, low.bit_length() - 1))
            higher ^= low
    return pairs


def _bulk_edge_groups(
    common: int,
    attr_codes: tuple[int, ...],
    colors: list[int],
) -> _EdgeGroups:
    """Build an edge's only-a/only-b/mixed group state in one pass.

    Equivalent to ``_EdgeGroups()`` + one ``add`` per common neighbour, but
    without the per-add group-transition bookkeeping — the counts are
    classified once at the end.  The state remains ready for incremental
    ``remove`` calls during the peel.
    """
    state = _EdgeGroups()
    color_counts = state.color_counts
    while common:
        low = common & -common
        w = low.bit_length() - 1
        common ^= low
        entry = color_counts.get(colors[w])
        if entry is None:
            color_counts[colors[w]] = entry = [0, 0]
        entry[attr_codes[w]] += 1
    count_a = count_b = count_mixed = 0
    for entry in color_counts.values():
        if entry[0]:
            if entry[1]:
                count_mixed += 1
            else:
                count_a += 1
        else:
            count_b += 1
    state.count_a = count_a
    state.count_b = count_b
    state.count_mixed = count_mixed
    return state


def colorful_support_peel(
    kernel: GraphKernel,
    k: int,
    colors: list[int],
) -> tuple[list[int], int]:
    """Run the ColorfulSup edge peel; return ``(surviving adjacency, edges peeled)``.

    The returned adjacency is a per-vertex bitset list over kernel indices;
    vertices isolated by the peel simply end up with an empty mask.
    """
    n = kernel.n
    attr_codes = kernel.attr_codes
    adj = list(kernel.adj_bits)

    # Per edge: one {color: count} per attribute side; support = len(dict).
    tracker: dict[EdgePair, tuple[dict[int, int], dict[int, int]]] = {}
    for u, v in _edges(adj, n):
        counts: tuple[dict[int, int], dict[int, int]] = ({}, {})
        common = adj[u] & adj[v]
        while common:
            low = common & -common
            w = low.bit_length() - 1
            common ^= low
            bucket = counts[attr_codes[w]]
            color = colors[w]
            bucket[color] = bucket.get(color, 0) + 1
        tracker[(u, v)] = counts

    def violates(u: int, v: int) -> bool:
        need_a, need_b = _thresholds(attr_codes[u], attr_codes[v], k)
        counts = tracker[(u, v) if u < v else (v, u)]
        return len(counts[0]) < need_a or len(counts[1]) < need_b

    queue: deque[EdgePair] = deque()
    condemned: set[EdgePair] = set()
    for key in tracker:
        if violates(*key):
            queue.append(key)
            condemned.add(key)

    peeled = 0
    while queue:
        u, v = queue.popleft()
        if not (adj[u] >> v) & 1:
            continue
        common = adj[u] & adj[v]
        adj[u] &= ~(1 << v)
        adj[v] &= ~(1 << u)
        peeled += 1
        for w in iter_bits(common):
            for x, y, lost in ((u, w, v), (v, w, u)):
                key = (x, y) if x < y else (y, x)
                if key in condemned or not (adj[x] >> y) & 1:
                    continue
                bucket = tracker[key][attr_codes[lost]]
                color = colors[lost]
                remaining = bucket.get(color, 0) - 1
                if remaining <= 0:
                    bucket.pop(color, None)
                    if violates(x, y):
                        queue.append(key)
                        condemned.add(key)
                else:
                    bucket[color] = remaining
    return adj, peeled


def enhanced_support_peel(
    kernel: GraphKernel,
    k: int,
    colors: list[int],
) -> tuple[list[int], int]:
    """Run the EnColorfulSup edge peel; return ``(surviving adjacency, edges peeled)``.

    Reuses the incremental only-a/only-b/mixed group bookkeeping of the dict
    implementation (:class:`repro.reduction.enhanced_support._EdgeGroups`) —
    only the graph traversal changes representation.
    """
    n = kernel.n
    attr_codes = kernel.attr_codes
    adj = list(kernel.adj_bits)

    groups: dict[EdgePair, _EdgeGroups] = {}
    for u, v in _edges(adj, n):
        groups[(u, v)] = _bulk_edge_groups(adj[u] & adj[v], attr_codes, colors)

    def violates(u: int, v: int) -> bool:
        need_a, need_b = _thresholds(attr_codes[u], attr_codes[v], k)
        state = groups[(u, v) if u < v else (v, u)]
        return not edge_satisfies_enhanced_support(
            state.count_a, state.count_b, state.count_mixed, need_a, need_b
        )

    queue: deque[EdgePair] = deque()
    condemned: set[EdgePair] = set()
    for key in groups:
        if violates(*key):
            queue.append(key)
            condemned.add(key)

    peeled = 0
    while queue:
        u, v = queue.popleft()
        if not (adj[u] >> v) & 1:
            continue
        common = adj[u] & adj[v]
        adj[u] &= ~(1 << v)
        adj[v] &= ~(1 << u)
        peeled += 1
        for w in iter_bits(common):
            for x, y, lost in ((u, w, v), (v, w, u)):
                key = (x, y) if x < y else (y, x)
                if key in condemned or not (adj[x] >> y) & 1:
                    continue
                groups[key].remove(colors[lost], attr_codes[lost] == 0)
                if violates(x, y):
                    queue.append(key)
                    condemned.add(key)
    return adj, peeled


def survivors_mask(adj: list[int]) -> int:
    """Bitset of vertices that still have at least one incident edge."""
    mask = 0
    for index, neighbors in enumerate(adj):
        if neighbors:
            mask |= 1 << index
    return mask


def count_edges(adj: list[int], mask: int | None = None) -> int:
    """Number of undirected edges in a bitset adjacency (restricted to ``mask``)."""
    total = 0
    if mask is None:
        for neighbors in adj:
            total += neighbors.bit_count()
        return total // 2
    for index in bits_list(mask):
        total += (adj[index] & mask).bit_count()
    return total // 2
