"""The bitset branch-and-bound core of MaxRFC.

This is the hot path of the whole package.  One :class:`KernelBranchAndBound`
instance explores one rank-ordered connected component through a
:class:`~repro.kernel.view.SubgraphView`; the search makes exactly the same
decisions as ``MaxRFC._branch`` — same pruning rules, same candidate
iteration order, same statistics counters — but every per-branch set
operation is collapsed into integer bit arithmetic:

* candidate narrowing ``{v in C, rank(v) > rank(u)} ∩ N(u)`` is
  ``cand & adj[u] & (-1 << (p + 1))`` — three machine-word ops per word
  instead of a Python-level hash probe per candidate;
* attribute feasibility and fairness-gap counts are one AND + popcount;
* the incumbent clique only materialises back to original vertex ids when it
  actually improves.

Structurally the recursion is *child-inlined*: a node's prologue (record the
clique, size/attribute/fairness/bound prunes) is evaluated inline in the
parent's candidate loop, and a Python call is spent only on children that
survive it and still have candidates to iterate.  Most branch-and-bound
nodes are pruned leaves, so this removes the interpreter's call overhead
from the bulk of the tree while visiting exactly the same nodes in exactly
the same order.

Because the traversal order and prune decisions are identical, the kernel
search returns the *same clique* as the dict search, not merely one of equal
size — the parity suite pins this down to the statistics counters.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.bounds.base import BoundStack
from repro.kernel.bounds import stack_prunes
from repro.kernel.view import SubgraphView
from repro.search.statistics import SearchStats


class KernelBranchAndBound:
    """Branch-and-bound over one component view with a shared incumbent.

    ``check_budget`` is called once per branch with the stats object and must
    raise to abort the search (time/branch budget); the incumbent survives
    the abort because it lives on this object.  ``has_budget=False`` skips
    the callback entirely (it would be a no-op), sparing two calls per node.

    Two hooks exist for the parallel executor (:mod:`repro.parallel`):
    ``on_improve`` is invoked with the new incumbent size whenever a larger
    fair clique is recorded (a worker publishes it to the shared incumbent
    channel), and ``best_size`` may be raised *externally* mid-search (from a
    ``check_budget`` callback polling that channel) to tighten the pruning
    threshold — raising the size without a clique is sound because the search
    only ever records cliques strictly larger than ``best_size``.
    """

    __slots__ = (
        "view",
        "k",
        "delta",
        "stats",
        "bound_stack",
        "bound_depth",
        "check_budget",
        "has_budget",
        "best_size",
        "best_clique",
        "on_improve",
    )

    def __init__(
        self,
        view: SubgraphView,
        k: int,
        delta: int,
        stats: SearchStats,
        bound_stack: BoundStack | None,
        bound_depth: int,
        check_budget: Callable[[SearchStats], None],
        best_size: int,
        best_clique: frozenset,
        has_budget: bool = True,
        on_improve: Callable[[int], None] | None = None,
    ) -> None:
        self.view = view
        self.k = k
        self.delta = delta
        self.stats = stats
        self.bound_stack = bound_stack
        self.bound_depth = bound_depth
        self.check_budget = check_budget
        self.has_budget = has_budget
        self.best_size = best_size
        self.best_clique = best_clique
        self.on_improve = on_improve

    def run(self) -> tuple[int, frozenset]:
        """Explore the whole component; return the (possibly improved) incumbent."""
        # Root prologue (R = {}, C = every vertex), then expand.
        stats = self.stats
        stats.branches_explored += 1
        if self.has_budget:
            self.check_budget(stats)
        cand_mask = self.view.full_mask
        if not cand_mask:
            return self.best_size, self.best_clique
        k = self.k
        num_candidates = cand_mask.bit_count()
        if num_candidates < max(2 * k, self.best_size + 1):
            stats.pruned_by_size += 1
            return self.best_size, self.best_clique
        count_c_a = (cand_mask & self.view.attr_a).bit_count()
        count_c_b = num_candidates - count_c_a
        if count_c_a < k or count_c_b < k:
            stats.pruned_by_attribute_feasibility += 1
            return self.best_size, self.best_clique
        stack = self.bound_stack
        if stack is not None and 0 < self.bound_depth:
            stats.bound_evaluations += 1
            if stack_prunes(
                self.view, stack, 0, cand_mask, k, self.delta,
                max(2 * k - 1, self.best_size),
            ):
                stats.pruned_by_bound += 1
                return self.best_size, self.best_clique
        self._expand(0, 0, 0, cand_mask, 0, 0)
        return self.best_size, self.best_clique

    def run_root_branch(self, p: int) -> tuple[int, frozenset]:
        """Explore only the root subtree whose first clique member is position ``p``.

        This is the shard granularity of the parallel executor: the root
        candidate loop of :meth:`run` decomposes into one independent subtree
        per position (``R = {p}``, ``C = N(p)`` restricted to higher ranks),
        so an oversized component can be split one branch level deep and its
        subtrees solved on different workers.  The child prologue replicated
        here is the same one :meth:`_expand` runs inline at ``depth == 0`` —
        same prune rules, same counters — minus the incumbent-vs-remaining
        cutoff, which depends on the root iteration state that a lone subtree
        does not have.
        """
        stats = self.stats
        view = self.view
        k = self.k
        two_k = 2 * k
        stats.branches_explored += 1
        if self.has_budget:
            self.check_budget(stats)
        low = 1 << p
        is_a = view.attr_a_flags[p]
        child_a = is_a
        child_b = 1 - is_a
        # A single vertex is never a fair clique for k >= 1, so unlike the
        # inline prologue no incumbent record can happen here.
        new_cand = view.full_mask & view.adj[p] & (-1 << (p + 1))
        if not new_cand:
            return self.best_size, self.best_clique
        num_candidates = new_cand.bit_count()
        limit = self.best_size + 1
        if limit < two_k:
            limit = two_k
        if 1 + num_candidates < limit:
            stats.pruned_by_size += 1
            return self.best_size, self.best_clique
        count_c_a = (new_cand & view.attr_a).bit_count()
        count_c_b = num_candidates - count_c_a
        if child_a + count_c_a < k or child_b + count_c_b < k:
            stats.pruned_by_attribute_feasibility += 1
            return self.best_size, self.best_clique
        delta = self.delta
        if (
            child_a > child_b + count_c_b + delta
            or child_b > child_a + count_c_a + delta
        ):
            stats.pruned_by_fairness_gap += 1
            return self.best_size, self.best_clique
        stack = self.bound_stack
        if stack is not None and 1 < self.bound_depth:
            stats.bound_evaluations += 1
            if stack_prunes(
                view, stack, low, new_cand, k, delta,
                max(two_k - 1, self.best_size),
            ):
                stats.pruned_by_bound += 1
                return self.best_size, self.best_clique
        self._expand(low, child_a, child_b, new_cand, 1, 1)
        return self.best_size, self.best_clique

    def _expand(
        self,
        clique_mask: int,
        count_r_a: int,
        count_r_b: int,
        cand_mask: int,
        depth: int,
        size_r: int,
    ) -> None:
        """Iterate the candidates of a node that already survived its prologue.

        Every child's prologue — counters, budget, fairness record, size /
        attribute-feasibility / fairness-gap / bound prunes — runs inline
        here; only children that reach their own candidate loop recurse.
        """
        stats = self.stats
        view = self.view
        adj = view.adj
        attr_a = view.attr_a
        is_a_of = view.attr_a_flags
        k = self.k
        delta = self.delta
        two_k = 2 * k
        has_budget = self.has_budget
        stack = self.bound_stack
        child_bounded = stack is not None and depth + 1 < self.bound_depth
        child_depth = depth + 1
        child_size = size_r + 1

        # Same iteration protocol as the dict search: root candidates in
        # descending rank (big colorful cores first, so the incumbent grows
        # early), deeper levels ascending so the suffix-size early exit holds.
        # Candidates are streamed straight off the mask — no positions list
        # is materialised per node.
        if depth == 0:
            iteration = 0
        else:
            iteration = cand_mask.bit_count() + 1
        mask = cand_mask
        while mask:
            if depth == 0:
                # Descending rank: peel the highest set bit; the j-th vertex
                # from the top has j later-ranked candidates (remaining).
                p = mask.bit_length() - 1
                low = 1 << p
                mask ^= low
                iteration += 1
                remaining = iteration
            else:
                low = mask & -mask
                mask ^= low
                iteration -= 1
                remaining = iteration
                p = low.bit_length() - 1
            limit = self.best_size + 1
            if limit < two_k:
                limit = two_k
            if size_r + remaining < limit:
                stats.pruned_by_incumbent += 1
                if depth == 0:
                    continue
                break

            # ---------------- child prologue, inline ---------------- #
            stats.branches_explored += 1
            if has_budget:
                self.check_budget(stats)
            is_a = is_a_of[p]
            child_a = count_r_a + is_a
            child_b = count_r_b + (1 - is_a)
            if (
                child_size > self.best_size
                and child_a >= k
                and child_b >= k
                and abs(child_a - child_b) <= delta
            ):
                self.best_size = child_size
                self.best_clique = view.frozenset_of(clique_mask | low)
                stats.solutions_found += 1
                if self.on_improve is not None:
                    self.on_improve(child_size)
            new_cand = cand_mask & adj[p] & (-1 << (p + 1))
            if not new_cand:
                continue
            num_candidates = new_cand.bit_count()
            limit = self.best_size + 1
            if limit < two_k:
                limit = two_k
            if child_size + num_candidates < limit:
                stats.pruned_by_size += 1
                continue
            count_c_a = (new_cand & attr_a).bit_count()
            count_c_b = num_candidates - count_c_a
            if child_a + count_c_a < k or child_b + count_c_b < k:
                stats.pruned_by_attribute_feasibility += 1
                continue
            if (
                child_a > child_b + count_c_b + delta
                or child_b > child_a + count_c_a + delta
            ):
                stats.pruned_by_fairness_gap += 1
                continue
            if child_bounded:
                stats.bound_evaluations += 1
                if stack_prunes(
                    view, stack, clique_mask | low, new_cand, k, delta,
                    max(two_k - 1, self.best_size),
                ):
                    stats.pruned_by_bound += 1
                    continue
            self._expand(
                clique_mask | low, child_a, child_b, new_cand,
                child_depth, child_size,
            )
