"""The bitset branch-and-bound core of the exact fair-clique search.

This is the hot path of the whole package.  One :class:`KernelBranchAndBound`
instance explores one rank-ordered connected component through a
:class:`~repro.kernel.view.SubgraphView`; the search makes exactly the same
decisions as the dict-based ``MaxRFC._branch`` — same pruning rules, same
candidate iteration order, same statistics counters — but every per-branch
set operation is collapsed into integer bit arithmetic:

* candidate narrowing ``{v in C, rank(v) > rank(u)} ∩ N(u)`` is
  ``cand & adj[u] & (-1 << (p + 1))`` — three machine-word ops per word
  instead of a Python-level hash probe per candidate;
* attribute feasibility and fairness-gap counts are one AND + popcount per
  attribute value;
* the incumbent clique only materialises back to original vertex ids when it
  actually improves.

The fairness condition itself comes from an
:class:`~repro.models.base.ActiveModel`: per-attribute-value lower quotas,
the optional binary gap cap, the minimum feasible clique size, and the bound
stack.  The search consumes only that data — it never branches on model
names or stack configurations, so every model (including the multi-attribute
weak model over any domain size) runs through this one implementation.

Structurally the recursion is *child-inlined*: a node's prologue (record the
clique, size/attribute/fairness/bound prunes) is evaluated inline in the
parent's candidate loop, and a Python call is spent only on children that
survive it and still have candidates to iterate.  Most branch-and-bound
nodes are pruned leaves, so this removes the interpreter's call overhead
from the bulk of the tree while visiting exactly the same nodes in exactly
the same order.

Because the traversal order and prune decisions are identical, the kernel
search returns the *same clique* as the dict search, not merely one of equal
size — the parity suite pins this down to the statistics counters.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.kernel.bounds import stack_prunes
from repro.kernel.view import SubgraphView
from repro.models.base import ActiveModel
from repro.search.statistics import SearchStats


class KernelBranchAndBound:
    """Branch-and-bound over one component view with a shared incumbent.

    ``model`` is the bound fairness model; its quotas/gap/bound-stack drive
    every fairness decision.  ``check_budget`` is called once per branch with
    the stats object and must raise to abort the search (time/branch budget);
    the incumbent survives the abort because it lives on this object.
    ``has_budget=False`` skips the callback entirely (it would be a no-op),
    sparing two calls per node.

    Two hooks exist for the parallel executor (:mod:`repro.parallel`):
    ``on_improve`` is invoked with the new incumbent size whenever a larger
    fair clique is recorded (a worker publishes it to the shared incumbent
    channel), and ``best_size`` may be raised *externally* mid-search (from a
    ``check_budget`` callback polling that channel) to tighten the pruning
    threshold — raising the size without a clique is sound because the search
    only ever records cliques strictly larger than ``best_size``.
    """

    __slots__ = (
        "view",
        "model",
        "lower",
        "gap",
        "min_size",
        "num_values",
        "domain_masks",
        "domain_codes",
        "stats",
        "bound_stack",
        "bound_depth",
        "check_budget",
        "has_budget",
        "best_size",
        "best_clique",
        "on_improve",
    )

    def __init__(
        self,
        view: SubgraphView,
        model: ActiveModel,
        stats: SearchStats,
        bound_depth: int,
        check_budget: Callable[[SearchStats], None],
        best_size: int,
        best_clique: frozenset,
        has_budget: bool = True,
        on_improve: Callable[[int], None] | None = None,
    ) -> None:
        self.view = view
        self.model = model
        self.lower = model.lower
        self.gap = model.gap
        self.min_size = model.min_size
        self.num_values = len(model.domain)
        self.stats = stats
        self.bound_stack = model.bound_stack
        self.bound_depth = bound_depth
        self.check_budget = check_budget
        self.has_budget = has_budget
        self.best_size = best_size
        self.best_clique = best_clique
        self.on_improve = on_improve
        # The view's attribute masks are indexed by the *kernel's* attribute
        # codes; the model's quota arrays are indexed by its *domain*, which
        # is the original graph's (a superset when reduction eliminated a
        # value entirely).  The model owns the remap — and rejects a domain
        # narrower than the kernel's values, which would have no quota slot
        # to count those vertices toward.
        self.domain_masks, self.domain_codes = model.view_slots(view)

    def run(self) -> tuple[int, frozenset]:
        """Explore the whole component; return the (possibly improved) incumbent."""
        # Root prologue (R = {}, C = every vertex), then expand.
        stats = self.stats
        stats.branches_explored += 1
        if self.has_budget:
            self.check_budget(stats)
        cand_mask = self.view.full_mask
        if not cand_mask:
            return self.best_size, self.best_clique
        num_candidates = cand_mask.bit_count()
        limit = self.best_size + 1
        if limit < self.min_size:
            limit = self.min_size
        if num_candidates < limit:
            stats.pruned_by_size += 1
            return self.best_size, self.best_clique
        lower = self.lower
        masks = self.domain_masks
        rest = num_candidates
        feasible = True
        for i in range(self.num_values - 1):
            count = (cand_mask & masks[i]).bit_count()
            rest -= count
            if count < lower[i]:
                feasible = False
                break
        if feasible and rest < lower[-1]:
            feasible = False
        if not feasible:
            stats.pruned_by_attribute_feasibility += 1
            return self.best_size, self.best_clique
        stack = self.bound_stack
        if stack is not None and 0 < self.bound_depth:
            stats.bound_evaluations += 1
            if stack_prunes(
                self.view, stack, 0, cand_mask,
                self.model.quota, self.model.bound_delta,
                max(self.min_size - 1, self.best_size),
            ):
                stats.pruned_by_bound += 1
                return self.best_size, self.best_clique
        self._expand(0, [0] * self.num_values, cand_mask, 0, 0)
        return self.best_size, self.best_clique

    def run_root_branch(self, p: int) -> tuple[int, frozenset]:
        """Explore only the root subtree whose first clique member is position ``p``.

        This is the shard granularity of the parallel executor: the root
        candidate loop of :meth:`run` decomposes into one independent subtree
        per position (``R = {p}``, ``C = N(p)`` restricted to higher ranks),
        so an oversized component can be split one branch level deep and its
        subtrees solved on different workers.  The child prologue replicated
        here is the same one :meth:`_expand` runs inline at ``depth == 0`` —
        same prune rules, same counters — minus the incumbent-vs-remaining
        cutoff, which depends on the root iteration state that a lone subtree
        does not have.
        """
        stats = self.stats
        view = self.view
        lower = self.lower
        gap = self.gap
        min_size = self.min_size
        stats.branches_explored += 1
        if self.has_budget:
            self.check_budget(stats)
        low = 1 << p
        counts_r = [0] * self.num_values
        counts_r[self.domain_codes[p]] = 1
        if 1 > self.best_size and self.min_size <= 1:
            # A single vertex can only be fair for a one-value domain with
            # k = 1; for every binary model this branch is dead code.
            fair = True
            for i in range(self.num_values):
                if counts_r[i] < lower[i]:
                    fair = False
                    break
            if fair:
                self.best_size = 1
                self.best_clique = view.frozenset_of(low)
                stats.solutions_found += 1
                if self.on_improve is not None:
                    self.on_improve(1)
        new_cand = view.full_mask & view.adj[p] & (-1 << (p + 1))
        if not new_cand:
            return self.best_size, self.best_clique
        num_candidates = new_cand.bit_count()
        limit = self.best_size + 1
        if limit < min_size:
            limit = min_size
        if 1 + num_candidates < limit:
            stats.pruned_by_size += 1
            return self.best_size, self.best_clique
        masks = self.domain_masks
        counts_c = [0] * self.num_values
        rest = num_candidates
        for i in range(self.num_values - 1):
            count = (new_cand & masks[i]).bit_count()
            counts_c[i] = count
            rest -= count
        counts_c[-1] = rest
        for i in range(self.num_values):
            if counts_r[i] + counts_c[i] < lower[i]:
                stats.pruned_by_attribute_feasibility += 1
                return self.best_size, self.best_clique
        if gap is not None and (
            counts_r[0] > counts_r[1] + counts_c[1] + gap
            or counts_r[1] > counts_r[0] + counts_c[0] + gap
        ):
            stats.pruned_by_fairness_gap += 1
            return self.best_size, self.best_clique
        stack = self.bound_stack
        if stack is not None and 1 < self.bound_depth:
            stats.bound_evaluations += 1
            if stack_prunes(
                view, stack, low, new_cand,
                self.model.quota, self.model.bound_delta,
                max(min_size - 1, self.best_size),
            ):
                stats.pruned_by_bound += 1
                return self.best_size, self.best_clique
        self._expand(low, counts_r, new_cand, 1, 1)
        return self.best_size, self.best_clique

    def _expand(
        self,
        clique_mask: int,
        counts_r: list[int],
        cand_mask: int,
        depth: int,
        size_r: int,
    ) -> None:
        """Iterate the candidates of a node that already survived its prologue.

        Every child's prologue — counters, budget, fairness record, size /
        attribute-feasibility / fairness-gap / bound prunes — runs inline
        here; only children that reach their own candidate loop recurse.
        ``counts_r`` holds the per-domain-value attribute counts of R and is
        shared down the recursion mutate-then-undo style, so no per-node
        allocation happens for the clique side.
        """
        stats = self.stats
        view = self.view
        adj = view.adj
        masks = self.domain_masks
        code_of = self.domain_codes
        lower = self.lower
        gap = self.gap
        min_size = self.min_size
        num_values = self.num_values
        last = num_values - 1
        # Two-value domains (every binary model, and multi_weak on binary
        # graphs) keep the historic all-scalar arithmetic: one popcount and
        # zero per-node allocations.  This is an *arity* specialisation of
        # the same decision procedure, not a model branch — wider domains
        # take the generic per-value loop below with identical semantics.
        binary = num_values == 2
        if binary:
            mask_0 = masks[0]
            lower_0 = lower[0]
            lower_1 = lower[1]
        has_budget = self.has_budget
        stack = self.bound_stack
        child_bounded = stack is not None and depth + 1 < self.bound_depth
        child_depth = depth + 1
        child_size = size_r + 1

        # Same iteration protocol as the dict search: root candidates in
        # descending rank (big colorful cores first, so the incumbent grows
        # early), deeper levels ascending so the suffix-size early exit holds.
        # Candidates are streamed straight off the mask — no positions list
        # is materialised per node.
        if depth == 0:
            iteration = 0
        else:
            iteration = cand_mask.bit_count() + 1
        mask = cand_mask
        while mask:
            if depth == 0:
                # Descending rank: peel the highest set bit; the j-th vertex
                # from the top has j later-ranked candidates (remaining).
                p = mask.bit_length() - 1
                low = 1 << p
                mask ^= low
                iteration += 1
                remaining = iteration
            else:
                low = mask & -mask
                mask ^= low
                iteration -= 1
                remaining = iteration
                p = low.bit_length() - 1
            limit = self.best_size + 1
            if limit < min_size:
                limit = min_size
            if size_r + remaining < limit:
                stats.pruned_by_incumbent += 1
                if depth == 0:
                    continue
                break

            # ---------------- child prologue, inline ---------------- #
            stats.branches_explored += 1
            if has_budget:
                self.check_budget(stats)
            code = code_of[p]
            counts_r[code] += 1
            if child_size > self.best_size:
                if binary:
                    child_0 = counts_r[0]
                    child_1 = counts_r[1]
                    fair = (
                        child_0 >= lower_0
                        and child_1 >= lower_1
                        and (gap is None or abs(child_0 - child_1) <= gap)
                    )
                else:
                    fair = True
                    for i in range(num_values):
                        if counts_r[i] < lower[i]:
                            fair = False
                            break
                    if fair and gap is not None and abs(counts_r[0] - counts_r[1]) > gap:
                        fair = False
                if fair:
                    self.best_size = child_size
                    self.best_clique = view.frozenset_of(clique_mask | low)
                    stats.solutions_found += 1
                    if self.on_improve is not None:
                        self.on_improve(child_size)
            new_cand = cand_mask & adj[p] & (-1 << (p + 1))
            if not new_cand:
                counts_r[code] -= 1
                continue
            num_candidates = new_cand.bit_count()
            limit = self.best_size + 1
            if limit < min_size:
                limit = min_size
            if child_size + num_candidates < limit:
                stats.pruned_by_size += 1
                counts_r[code] -= 1
                continue
            # Per-value candidate counts: d-1 popcounts, the last by
            # subtraction (one popcount and all-scalar on binary domains).
            if binary:
                child_0 = counts_r[0]
                child_1 = counts_r[1]
                count_c_0 = (new_cand & mask_0).bit_count()
                count_c_1 = num_candidates - count_c_0
                if child_0 + count_c_0 < lower_0 or child_1 + count_c_1 < lower_1:
                    stats.pruned_by_attribute_feasibility += 1
                    counts_r[code] -= 1
                    continue
                if gap is not None and (
                    child_0 > child_1 + count_c_1 + gap
                    or child_1 > child_0 + count_c_0 + gap
                ):
                    stats.pruned_by_fairness_gap += 1
                    counts_r[code] -= 1
                    continue
            else:
                rest = num_candidates
                feasible = True
                if last:
                    counts_c = [0] * num_values
                    for i in range(last):
                        count = (new_cand & masks[i]).bit_count()
                        counts_c[i] = count
                        rest -= count
                        if counts_r[i] + count < lower[i]:
                            feasible = False
                            break
                    counts_c[last] = rest
                else:
                    counts_c = [rest]
                if feasible and counts_r[last] + rest < lower[last]:
                    feasible = False
                if not feasible:
                    stats.pruned_by_attribute_feasibility += 1
                    counts_r[code] -= 1
                    continue
                if gap is not None and (
                    counts_r[0] > counts_r[1] + counts_c[1] + gap
                    or counts_r[1] > counts_r[0] + counts_c[0] + gap
                ):
                    stats.pruned_by_fairness_gap += 1
                    counts_r[code] -= 1
                    continue
            if child_bounded:
                stats.bound_evaluations += 1
                if stack_prunes(
                    view, stack, clique_mask | low, new_cand,
                    self.model.quota, self.model.bound_delta,
                    max(min_size - 1, self.best_size),
                ):
                    stats.pruned_by_bound += 1
                    counts_r[code] -= 1
                    continue
            self._expand(
                clique_mask | low, counts_r, new_cand, child_depth, child_size,
            )
            counts_r[code] -= 1
