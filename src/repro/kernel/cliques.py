"""Bitset Bron–Kerbosch maximal-clique enumeration (with Tomita pivoting).

The classic dict implementation rebuilds a scope-filtered neighbour *set* for
every pivot probe and every branch; here ``P``, ``X``, and ``R`` are plain
int bitsets, the pivot scan is an AND + popcount per pool member, and the
candidate split is two bit operations.  The set of enumerated cliques is
identical to the dict enumerator's (Bron–Kerbosch yields every maximal
clique exactly once regardless of pivot choice); the *order* of emission may
differ, which no correctness property depends on.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.kernel.bitops import iter_bits
from repro.kernel.compile import GraphKernel


def enumerate_maximal_clique_masks(
    adj: list[int] | tuple[int, ...],
    scope_mask: int,
) -> Iterator[int]:
    """Yield every maximal clique of the induced subgraph as a bitset.

    ``adj`` is indexed by vertex position; only vertices inside ``scope_mask``
    are considered (adjacency bits outside the scope are ignored because
    ``P``/``X`` always stay subsets of the scope).
    """

    def expand(r_mask: int, p_mask: int, x_mask: int) -> Iterator[int]:
        if not p_mask and not x_mask:
            yield r_mask
            return
        # Tomita pivot: the pool vertex with the most neighbours in P.
        pivot = -1
        pivot_count = -1
        pool = p_mask | x_mask
        while pool:
            low = pool & -pool
            u = low.bit_length() - 1
            count = (adj[u] & p_mask).bit_count()
            if count > pivot_count:
                pivot_count = count
                pivot = u
            pool ^= low
        extension = p_mask & ~adj[pivot]
        for v in iter_bits(extension):
            neighbors = adj[v]
            yield from expand(
                r_mask | (1 << v), p_mask & neighbors, x_mask & neighbors
            )
            p_mask &= ~(1 << v)
            x_mask |= 1 << v

    if scope_mask:
        yield from expand(0, scope_mask, 0)


def enumerate_fair_clique_masks(
    adj: list[int] | tuple[int, ...],
    scope_mask: int,
    value_masks: tuple[int, ...],
    lower: tuple[int, ...],
    gap: int | None,
    min_size: int,
) -> Iterator[int]:
    """Yield every maximal clique of the scope that satisfies a fairness model.

    "Maximal" means maximal *as a clique* (no scope vertex extends it) — the
    same set the Bron–Kerbosch oracle enumerates — filtered to the cliques
    whose per-value attribute counts meet the model's quotas (``lower``, one
    per ``value_masks`` entry) and, when ``gap`` is given (binary models),
    whose count imbalance is at most ``gap``.

    Unlike filtering after the fact, infeasible subtrees are pruned inside
    the recursion: with ``R`` the current clique and ``P`` the candidates,
    every yielded clique ``Q`` satisfies ``R ⊆ Q ⊆ R ∪ P``, so a subtree is
    dead as soon as ``|R ∪ P| < min_size``, any value's count in ``R ∪ P``
    falls below its quota, or (binary) the gap can no longer close even by
    taking every remaining candidate of the minority value.  The prunes
    never touch maximality — they only skip subtrees that cannot emit a
    *fair* maximal clique — so the yielded set equals the oracle's
    fairness-filtered output exactly.
    """
    num_values = len(value_masks)

    def expand(r_mask: int, p_mask: int, x_mask: int) -> Iterator[int]:
        union = r_mask | p_mask
        if union.bit_count() < min_size:
            return
        for i in range(num_values):
            if (union & value_masks[i]).bit_count() < lower[i]:
                return
        if gap is not None:
            # counts reachable for value v lie in [count_r(v), count_union(v)]
            count_r_0 = (r_mask & value_masks[0]).bit_count()
            count_r_1 = (r_mask & value_masks[1]).bit_count()
            if (
                count_r_0 - (union & value_masks[1]).bit_count() > gap
                or count_r_1 - (union & value_masks[0]).bit_count() > gap
            ):
                return
        if not p_mask and not x_mask:
            # R is maximal, and with P empty the checks above were exact on
            # R itself — it is fair.
            yield r_mask
            return
        pivot = -1
        pivot_count = -1
        pool = p_mask | x_mask
        while pool:
            low = pool & -pool
            u = low.bit_length() - 1
            count = (adj[u] & p_mask).bit_count()
            if count > pivot_count:
                pivot_count = count
                pivot = u
            pool ^= low
        extension = p_mask & ~adj[pivot]
        for v in iter_bits(extension):
            neighbors = adj[v]
            yield from expand(
                r_mask | (1 << v), p_mask & neighbors, x_mask & neighbors
            )
            p_mask &= ~(1 << v)
            x_mask |= 1 << v

    if scope_mask:
        yield from expand(0, scope_mask, 0)


def enumerate_maximal_cliques_kernel(
    kernel: GraphKernel,
    scope_mask: int | None = None,
) -> Iterator[frozenset]:
    """Yield maximal cliques of (a subset of) the kernel as original-id frozensets."""
    mask = kernel.full_mask if scope_mask is None else scope_mask
    for clique_mask in enumerate_maximal_clique_masks(kernel.adj_bits, mask):
        yield kernel.frozenset_of_mask(clique_mask)


def maximum_clique_mask(
    adj: list[int] | tuple[int, ...],
    scope_mask: int,
) -> int:
    """Return a maximum-cardinality clique bitset (0 for an empty scope)."""
    best = 0
    best_size = 0
    for clique_mask in enumerate_maximal_clique_masks(adj, scope_mask):
        size = clique_mask.bit_count()
        if size > best_size:
            best_size = size
            best = clique_mask
    return best
