"""Bitset Bron–Kerbosch maximal-clique enumeration (with Tomita pivoting).

The classic dict implementation rebuilds a scope-filtered neighbour *set* for
every pivot probe and every branch; here ``P``, ``X``, and ``R`` are plain
int bitsets, the pivot scan is an AND + popcount per pool member, and the
candidate split is two bit operations.  The set of enumerated cliques is
identical to the dict enumerator's (Bron–Kerbosch yields every maximal
clique exactly once regardless of pivot choice); the *order* of emission may
differ, which no correctness property depends on.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.kernel.bitops import iter_bits
from repro.kernel.compile import GraphKernel


def enumerate_maximal_clique_masks(
    adj: list[int] | tuple[int, ...],
    scope_mask: int,
) -> Iterator[int]:
    """Yield every maximal clique of the induced subgraph as a bitset.

    ``adj`` is indexed by vertex position; only vertices inside ``scope_mask``
    are considered (adjacency bits outside the scope are ignored because
    ``P``/``X`` always stay subsets of the scope).
    """

    def expand(r_mask: int, p_mask: int, x_mask: int) -> Iterator[int]:
        if not p_mask and not x_mask:
            yield r_mask
            return
        # Tomita pivot: the pool vertex with the most neighbours in P.
        pivot = -1
        pivot_count = -1
        pool = p_mask | x_mask
        while pool:
            low = pool & -pool
            u = low.bit_length() - 1
            count = (adj[u] & p_mask).bit_count()
            if count > pivot_count:
                pivot_count = count
                pivot = u
            pool ^= low
        extension = p_mask & ~adj[pivot]
        for v in iter_bits(extension):
            neighbors = adj[v]
            yield from expand(
                r_mask | (1 << v), p_mask & neighbors, x_mask & neighbors
            )
            p_mask &= ~(1 << v)
            x_mask |= 1 << v

    if scope_mask:
        yield from expand(0, scope_mask, 0)


def enumerate_maximal_cliques_kernel(
    kernel: GraphKernel,
    scope_mask: int | None = None,
) -> Iterator[frozenset]:
    """Yield maximal cliques of (a subset of) the kernel as original-id frozensets."""
    mask = kernel.full_mask if scope_mask is None else scope_mask
    for clique_mask in enumerate_maximal_clique_masks(kernel.adj_bits, mask):
        yield kernel.frozenset_of_mask(clique_mask)


def maximum_clique_mask(
    adj: list[int] | tuple[int, ...],
    scope_mask: int,
) -> int:
    """Return a maximum-cardinality clique bitset (0 for an empty scope)."""
    best = 0
    best_size = 0
    for clique_mask in enumerate_maximal_clique_masks(adj, scope_mask):
        size = clique_mask.bit_count()
        if size > best_size:
            best_size = size
            best = clique_mask
    return best
