"""Kernel v2: fixed-width uint64 word-array bitset storage.

The big-int kernel of PR 2 stores one arbitrary-precision ``int`` per
adjacency row and builds each with O(degree) shifted ORs, every one of
which copies the whole row — compiling is O(m · n/64) and pickling the
snapshot serialises n separate big ints.  The words backend keeps the same
*logical* representation (every mask handed to consumers is still a Python
``int``) but changes the physical one:

* All adjacency rows and all per-attribute carrier masks live in **one
  contiguous little-endian buffer** of ``n + max(1, d)`` rows, each
  ``ceil(n/64)`` uint64 words wide.  Compiling sets single bytes —
  O(m + n·words) total.
* Rows materialise into ints lazily (``int.from_bytes`` over a buffer
  slice) and are cached, so the branch-and-bound sees exactly the big-int
  arithmetic it was written against — search trees, bounds, and counters
  are bit-for-bit identical across backends.
* The CSR arrays are machine-typed (``array('Q')``), so the whole snapshot
  pickles as three flat byte blobs instead of ~n Python objects, and the
  buffer can be mapped from :mod:`multiprocessing.shared_memory` so pool
  workers attach zero-copy (:mod:`repro.parallel.shm` builds a kernel whose
  ``buffer``/``indptr``/``indices`` are memoryviews into the segment).

``NumpyGraphKernel`` is the same storage compiled under the ``numpy``
backend name: it differs only in the mask-ops implementation bound to it
(vectorised reductions over the buffer).
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from repro.kernel.backend import BACKEND_NUMPY, BACKEND_WORDS
from repro.kernel.compile import GraphKernel, index_attributed_graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.attributed_graph import AttributedGraph


class LazyWordRows(Sequence):
    """Adjacency rows materialised to ints on first touch, then cached.

    Consumers index and iterate ``kernel.adj_bits``; they never mutate it.
    A row is one ``int.from_bytes`` over the backing buffer slice — cheap,
    and paid at most once per row per process.
    """

    __slots__ = ("_buffer", "_row_bytes", "_cache")

    def __init__(self, buffer, row_bytes: int, n: int) -> None:
        self._buffer = buffer
        self._row_bytes = row_bytes
        self._cache: list = [None] * n

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, index: int) -> int:
        cache = self._cache
        if index < 0:
            index += len(cache)
        row = cache[index]
        if row is None:
            row_bytes = self._row_bytes
            offset = index * row_bytes
            row = int.from_bytes(
                self._buffer[offset:offset + row_bytes], "little"
            )
            cache[index] = row
        return row

    def __iter__(self) -> Iterator[int]:
        for index in range(len(self._cache)):
            yield self[index]


class WordsGraphKernel(GraphKernel):
    """Graph snapshot whose bitsets live in one fixed-width words buffer."""

    backend = BACKEND_WORDS

    __slots__ = ("words", "row_bytes", "buffer")

    def __init__(
        self,
        vertex_of: tuple,
        index_of: dict,
        indptr,
        indices,
        buffer,
        attribute_values: tuple[str, ...],
        attr_codes: tuple[int, ...],
        labels: dict[int, str],
        num_edges: int,
    ) -> None:
        n = len(vertex_of)
        words = (n + 63) // 64
        row_bytes = words * 8
        self.words = words
        self.row_bytes = row_bytes
        self.buffer = buffer
        attr_base = n * row_bytes
        attr_masks = tuple(
            int.from_bytes(
                buffer[attr_base + code * row_bytes:
                       attr_base + (code + 1) * row_bytes],
                "little",
            )
            for code in range(max(1, len(attribute_values)))
        )
        super().__init__(
            vertex_of=vertex_of,
            index_of=index_of,
            indptr=indptr,
            indices=indices,
            adj_bits=LazyWordRows(buffer, row_bytes, n),
            attribute_values=attribute_values,
            attr_codes=attr_codes,
            attr_masks=attr_masks,
            labels=labels,
            num_edges=num_edges,
        )

    @property
    def num_attr_rows(self) -> int:
        """Attribute rows in the buffer (at least one, even with no values)."""
        return max(1, len(self.attribute_values))

    # ------------------------------------------------------------------ #
    # Pickling: ship three flat byte blobs, rebuild everything derived.
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        return {
            "vertex_of": self.vertex_of,
            "indptr": _as_array(self.indptr),
            "indices": _as_array(self.indices),
            "buffer": _as_bytes(self.buffer),
            "attribute_values": self.attribute_values,
            "attr_codes": self.attr_codes,
            "labels": self.labels,
            "num_edges": self.num_edges,
            "caches": (
                self._degeneracy_order,
                self._core_numbers,
                self._component_masks,
            ),
        }

    def __setstate__(self, state) -> None:
        caches = state.pop("caches")
        vertex_of = state["vertex_of"]
        self.__init__(
            index_of={vertex: i for i, vertex in enumerate(vertex_of)},
            **state,
        )
        (
            self._degeneracy_order,
            self._core_numbers,
            self._component_masks,
        ) = caches

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, m={self.num_edges}, "
            f"words={self.words}, attributes={self.attribute_values!r})"
        )


class NumpyGraphKernel(WordsGraphKernel):
    """Words storage with the vectorised numpy mask-ops bound to it."""

    backend = BACKEND_NUMPY

    __slots__ = ()


def _as_array(values) -> array:
    if isinstance(values, array):
        return values
    if isinstance(values, memoryview):
        return array("Q", values.tobytes())
    return array("Q", values)


def _as_bytes(buffer) -> bytes:
    if isinstance(buffer, bytes):
        return buffer
    return bytes(buffer)


def compile_words_kernel(
    graph: "AttributedGraph", backend_name: str = BACKEND_WORDS
) -> WordsGraphKernel:
    """Compile ``graph`` into the contiguous word-array snapshot.

    Same deterministic renumbering as the int path (shared prelude), but
    bit-setting is byte arithmetic on one bytearray: O(m + n·words) with no
    big-int churn, which is what makes compile the first primitive the
    words backend wins at scale.
    """
    ordered, index_of, attribute_values, code_of = index_attributed_graph(
        graph
    )
    n = len(ordered)
    words = (n + 63) // 64
    row_bytes = words * 8
    scratch = bytearray((n + max(1, len(attribute_values))) * row_bytes)
    attr_base = n * row_bytes

    indptr = [0] * (n + 1)
    indices: list[int] = []
    attr_codes = [0] * n
    labels: dict[int, str] = {}

    for index, vertex in enumerate(ordered):
        code = code_of[graph.attribute(vertex)]
        attr_codes[index] = code
        row = attr_base + code * row_bytes
        scratch[row + (index >> 3)] |= 1 << (index & 7)
        label = graph.label(vertex)
        if label != str(vertex):
            labels[index] = label
        neighbor_indices = sorted(index_of[u] for u in graph.neighbors(vertex))
        indices.extend(neighbor_indices)
        indptr[index + 1] = len(indices)
        row = index * row_bytes
        for neighbor in neighbor_indices:
            scratch[row + (neighbor >> 3)] |= 1 << (neighbor & 7)

    cls = NumpyGraphKernel if backend_name == BACKEND_NUMPY else WordsGraphKernel
    return cls(
        vertex_of=tuple(ordered),
        index_of=index_of,
        indptr=array("Q", indptr),
        indices=array("Q", indices),
        buffer=bytes(scratch),
        attribute_values=attribute_values,
        attr_codes=tuple(attr_codes),
        labels=labels,
        num_edges=graph.num_edges,
    )
