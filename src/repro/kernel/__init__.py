"""``repro.kernel`` — the compact bitset/CSR graph kernel.

A :class:`~repro.kernel.compile.GraphKernel` is a frozen, integer-reindexed
snapshot of an :class:`~repro.graph.attributed_graph.AttributedGraph`:
CSR adjacency for linear scans, per-vertex ``int`` bitmasks for set algebra,
and per-attribute bitmasks for fairness accounting.  Every hot path of the
reproduction — the MaxRFC branch-and-bound, the support/core reductions, the
``ubAD`` bounds, the heuristic growth loop, and the Bron–Kerbosch baseline —
runs on this snapshot; the mutable ``AttributedGraph`` remains the
user-facing builder and crosses the freeze boundary via ``graph.compile()``.

The kernel is *result-identical* to the dict-based implementations (same
cliques, same reduction survivors, same bound values); the parity test suite
under ``tests/test_kernel`` enforces this on randomized instances across all
fairness models.
"""

from repro.kernel.backend import (
    BACKEND_INT,
    BACKEND_NUMPY,
    BACKEND_WORDS,
    available_backends,
    default_backend,
    numpy_available,
    resolve_backend,
)
from repro.kernel.bitops import (
    bit,
    bits_list,
    iter_bits,
    mask_above,
    mask_from_indices,
    popcount,
)
from repro.kernel.cliques import (
    enumerate_maximal_clique_masks,
    enumerate_maximal_cliques_kernel,
    maximum_clique_mask,
)
from repro.kernel.coloring import (
    array_to_coloring,
    coloring_to_array,
    greedy_color_array,
)
from repro.kernel.compile import GraphKernel, compile_kernel
from repro.kernel.cores import (
    colorful_k_core_mask,
    enhanced_colorful_k_core_mask,
)
from repro.kernel.reduce import (
    colorful_support_peel,
    count_edges,
    enhanced_support_peel,
    survivors_mask,
)
from repro.kernel.maskops import (
    IntMaskOps,
    NumpyMaskOps,
    WordsMaskOps,
    make_ops,
)
from repro.kernel.search import KernelBranchAndBound
from repro.kernel.view import SubgraphView
from repro.kernel.words import (
    LazyWordRows,
    NumpyGraphKernel,
    WordsGraphKernel,
    compile_words_kernel,
)

__all__ = [
    "BACKEND_INT",
    "BACKEND_NUMPY",
    "BACKEND_WORDS",
    "GraphKernel",
    "IntMaskOps",
    "LazyWordRows",
    "NumpyGraphKernel",
    "NumpyMaskOps",
    "WordsGraphKernel",
    "WordsMaskOps",
    "available_backends",
    "compile_words_kernel",
    "default_backend",
    "make_ops",
    "numpy_available",
    "resolve_backend",
    "KernelBranchAndBound",
    "SubgraphView",
    "array_to_coloring",
    "bit",
    "bits_list",
    "colorful_k_core_mask",
    "colorful_support_peel",
    "coloring_to_array",
    "compile_kernel",
    "count_edges",
    "enhanced_colorful_k_core_mask",
    "enhanced_support_peel",
    "enumerate_maximal_clique_masks",
    "enumerate_maximal_cliques_kernel",
    "greedy_color_array",
    "iter_bits",
    "mask_above",
    "mask_from_indices",
    "maximum_clique_mask",
    "popcount",
    "survivors_mask",
]
