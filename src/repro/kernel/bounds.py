"""Kernel evaluation of the Section IV upper bounds.

The five cheap bounds of the default ``ubAD`` stack (Lemmas 5-9) — size,
attribute, color, attribute-color, enhanced attribute-color — reduce to
popcounts and small color bitsets on a :class:`~repro.kernel.view.SubgraphView`
and are evaluated here without touching the dict world.  Bounds that have no
kernel port yet (the colorful degeneracy / h-index / path bounds of the
ablation stacks) fall back to their dict implementation through a lazily
materialised :class:`~repro.bounds.base.BoundContext`; the fallback shares
one context per evaluation so the coloring is computed at most once.

Both paths produce identical values for identical instances (the kernel
coloring replicates the dict greedy coloring), so switching a search between
them never changes which branches are pruned — the parity suite pins this.
"""

from __future__ import annotations

from repro.bounds.base import BoundContext, BoundStack
from repro.cores.enhanced import balanced_split_value
from repro.kernel.view import SubgraphView

#: Bound names with a native kernel evaluator (the ``ubAD`` group).
KERNEL_BOUNDS = frozenset({"ubs", "uba", "ubc", "ubac", "ubeac"})


class _Evaluation:
    """Shared per-instance scratch: scope coloring + lazy dict fallback context."""

    __slots__ = ("view", "clique_mask", "cand_mask", "scope", "k", "delta",
                 "_class_masks", "_context")

    def __init__(
        self,
        view: SubgraphView,
        clique_mask: int,
        cand_mask: int,
        k: int,
        delta: int,
    ) -> None:
        self.view = view
        self.clique_mask = clique_mask
        self.cand_mask = cand_mask
        self.scope = clique_mask | cand_mask
        self.k = k
        self.delta = delta
        self._class_masks: list[int] | None = None
        self._context: BoundContext | None = None

    def class_masks(self) -> list[int]:
        if self._class_masks is None:
            self._class_masks = self.view.color_class_masks(self.scope)
        return self._class_masks

    def attribute_color_sets(self) -> tuple[int, int]:
        """Bitsets of colors used by attribute-a / attribute-b scope vertices.

        One AND per (color class, attribute side) — O(number of colors), not
        O(scope size).
        """
        attr_a = self.view.attr_a
        colors_a = 0
        colors_b = 0
        for color, class_mask in enumerate(self.class_masks()):
            if class_mask & attr_a:
                colors_a |= 1 << color
            if class_mask & ~attr_a:
                colors_b |= 1 << color
        return colors_a, colors_b

    def fallback_context(self) -> BoundContext:
        if self._context is None:
            view = self.view
            attribute_a, attribute_b = view.kernel.attribute_values[:2]
            self._context = BoundContext(
                graph=view.graph,
                clique=view.frozenset_of(self.clique_mask),
                candidates=view.frozenset_of(self.cand_mask),
                k=self.k,
                delta=self.delta,
                attribute_a=attribute_a,
                attribute_b=attribute_b,
            )
        return self._context


def _evaluate(name: str, ev: _Evaluation) -> int:
    if name == "ubs":
        return ev.scope.bit_count()
    if name == "uba":
        count_a = (ev.scope & ev.view.attr_a).bit_count()
        count_b = ev.scope.bit_count() - count_a
        return min(count_a + count_b, 2 * min(count_a, count_b) + ev.delta)
    if name == "ubc":
        return len(ev.class_masks())
    if name == "ubac":
        colors_a, colors_b = ev.attribute_color_sets()
        len_a, len_b = colors_a.bit_count(), colors_b.bit_count()
        return min(len_a + len_b, 2 * min(len_a, len_b) + ev.delta)
    if name == "ubeac":
        colors_a, colors_b = ev.attribute_color_sets()
        mixed = colors_a & colors_b
        count_a = (colors_a & ~mixed).bit_count()
        count_b = (colors_b & ~mixed).bit_count()
        count_mixed = mixed.bit_count()
        total = count_a + count_b + count_mixed
        return min(
            total,
            2 * balanced_split_value(count_a, count_b, count_mixed) + ev.delta,
        )
    raise KeyError(name)


def stack_prunes(
    view: SubgraphView,
    stack: BoundStack,
    clique_mask: int,
    cand_mask: int,
    k: int,
    delta: int,
    threshold: int,
) -> bool:
    """Kernel analogue of :meth:`BoundStack.prunes` for one ``(R, C)`` instance.

    Bounds are consulted in the stack's cheapest-first order; the first value
    at or below ``threshold`` short-circuits, exactly like the dict path.
    """
    ev = _Evaluation(view, clique_mask, cand_mask, k, delta)
    for bound in stack.bounds:
        if bound.name in KERNEL_BOUNDS:
            value = _evaluate(bound.name, ev)
        else:
            value = bound(ev.fallback_context())
        if value <= threshold:
            return True
    return False


def stack_evaluate(
    view: SubgraphView,
    stack: BoundStack,
    clique_mask: int,
    cand_mask: int,
    k: int,
    delta: int,
) -> int:
    """Kernel analogue of :meth:`BoundStack.evaluate`: min over all bounds."""
    ev = _Evaluation(view, clique_mask, cand_mask, k, delta)
    values = []
    for bound in stack.bounds:
        if bound.name in KERNEL_BOUNDS:
            values.append(_evaluate(bound.name, ev))
        else:
            values.append(bound(ev.fallback_context()))
    return min(values)
