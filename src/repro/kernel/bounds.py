"""Kernel evaluation of the Section IV upper bounds.

Every bound of the repo's predefined stacks now has a bitset-native
evaluator on a :class:`~repro.kernel.view.SubgraphView`:

* the five cheap bounds of the default ``ubAD`` stack (Lemmas 5-9) — size,
  attribute, color, attribute-color, enhanced attribute-color — reduce to
  popcounts and small color bitsets;
* the structural bounds ``ub_deg``/``ub_h`` (Lemmas 10-11) peel / rank the
  scope-induced degrees straight off the local adjacency masks;
* the colorful bounds ``ubcd``/``ubch``/``ubcp`` (Lemmas 12-14) run the
  colorful-core peel, the colorful h-index, and the colorful-path DP on
  color-class masks + popcounts, so the kernel search never round-trips to
  dict structures for any predefined stack.

Custom third-party bounds (anything not in :data:`KERNEL_BOUNDS`) still fall
back to their dict implementation through a lazily materialised
:class:`~repro.bounds.base.BoundContext`; the fallback shares one context per
evaluation so the coloring is computed at most once.

Both paths produce identical values for identical instances (the kernel
coloring replicates the dict greedy coloring, the peels converge to canonical
core numbers, and the path DP runs over the same total order), so switching a
search between them never changes which branches are pruned — the parity
suite pins this per bound and per stack.
"""

from __future__ import annotations

from repro.bounds.base import BoundContext, BoundStack, UpperBound
from repro.cores.enhanced import balanced_split_value
from repro.cores.kcore import h_index_of_values
from repro.kernel.bitops import bits_list
from repro.kernel.view import SubgraphView

#: Bound names with a native kernel evaluator (every predefined stack).
KERNEL_BOUNDS = frozenset({
    "ubs", "uba", "ubc", "ubac", "ubeac",   # the ubAD group (Lemmas 5-9)
    "ub_deg", "ub_h",                        # structural (Lemmas 10-11)
    "ubcd", "ubch", "ubcp",                  # colorful (Lemmas 12-14)
})


class _Evaluation:
    """Shared per-instance scratch: scope coloring + lazy dict fallback context."""

    __slots__ = ("view", "clique_mask", "cand_mask", "scope", "k", "delta",
                 "_class_masks", "_colors", "_positions", "_min_colorful",
                 "_context")

    def __init__(
        self,
        view: SubgraphView,
        clique_mask: int,
        cand_mask: int,
        k: int,
        delta: int,
    ) -> None:
        self.view = view
        self.clique_mask = clique_mask
        self.cand_mask = cand_mask
        self.scope = clique_mask | cand_mask
        self.k = k
        self.delta = delta
        self._class_masks: list[int] | None = None
        self._colors: list[int] | None = None
        self._positions: list[int] | None = None
        self._min_colorful: list[int] | None = None
        self._context: BoundContext | None = None

    def class_masks(self) -> list[int]:
        if self._class_masks is None:
            self._class_masks = self.view.color_class_masks(self.scope)
        return self._class_masks

    def positions(self) -> list[int]:
        """Local positions of the scope vertices (ascending)."""
        if self._positions is None:
            self._positions = bits_list(self.scope)
        return self._positions

    def colors(self) -> list[int]:
        """Per-position color of the scope coloring (-1 outside the scope)."""
        if self._colors is None:
            colors = [-1] * self.view.n
            for color, class_mask in enumerate(self.class_masks()):
                for p in bits_list(class_mask):
                    colors[p] = color
            self._colors = colors
        return self._colors

    def attribute_color_sets(self) -> tuple[int, int]:
        """Bitsets of colors used by attribute-a / attribute-b scope vertices.

        One AND per (color class, attribute side) — O(number of colors), not
        O(scope size).
        """
        attr_a = self.view.attr_a
        colors_a = 0
        colors_b = 0
        for color, class_mask in enumerate(self.class_masks()):
            if class_mask & attr_a:
                colors_a |= 1 << color
            if class_mask & ~attr_a:
                colors_b |= 1 << color
        return colors_a, colors_b

    def min_colorful_degrees(self) -> list[int]:
        """``D_min(v) = min(D_a(v), D_b(v))`` per scope vertex (Definition 2).

        Colorful degrees count *distinct colors* per attribute side among the
        in-scope neighbours; with one bitset per color class each side is one
        AND + truth test per class.
        """
        if self._min_colorful is None:
            view = self.view
            adj = view.adj
            attr_a = view.attr_a
            scope = self.scope
            class_masks = self.class_masks()
            minima = []
            for p in self.positions():
                neighbors = adj[p] & scope
                count_a = 0
                count_b = 0
                for class_mask in class_masks:
                    shared = neighbors & class_mask
                    if shared:
                        if shared & attr_a:
                            count_a += 1
                        if shared & ~attr_a:
                            count_b += 1
                minima.append(count_a if count_a < count_b else count_b)
            self._min_colorful = minima
        return self._min_colorful

    def fallback_context(self) -> BoundContext:
        if self._context is None:
            view = self.view
            attribute_a, attribute_b = view.kernel.attribute_values[:2]
            self._context = BoundContext(
                graph=view.source_graph(),
                clique=view.frozenset_of(self.clique_mask),
                candidates=view.frozenset_of(self.cand_mask),
                k=self.k,
                delta=self.delta,
                attribute_a=attribute_a,
                attribute_b=attribute_b,
            )
        return self._context


def _scope_degeneracy(ev: _Evaluation) -> int:
    """Degeneracy of the scope-induced subgraph (canonical, so dict-identical)."""
    positions = ev.positions()
    if not positions:
        return 0
    adj = ev.view.adj
    scope = ev.scope
    degrees = {p: (adj[p] & scope).bit_count() for p in positions}
    max_degree = max(degrees.values())
    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for p, degree in degrees.items():
        buckets[degree].append(p)
    alive = set(positions)
    current = 0
    level = 0
    while alive:
        while current <= max_degree and not buckets[current]:
            current += 1
        if current > max_degree:
            break
        p = buckets[current].pop()
        if p not in alive or degrees[p] != current:
            continue
        alive.remove(p)
        if current > level:
            level = current
        for q in bits_list(adj[p] & scope):
            if q in alive:
                degree = degrees[q]
                if degree > current:
                    degrees[q] = degree - 1
                    buckets[degree - 1].append(q)
    return level


def _colorful_degeneracy(ev: _Evaluation) -> int:
    """Colorful degeneracy of the scope (Definition 9) = max colorful core.

    Reuses the canonical bucket peel of
    :func:`repro.kernel.cores.colorful_core_numbers_mask` by lifting the
    view-local scope (positions + scope coloring) to kernel indices — the
    scope is a subset of the view's component, and the peel only ever looks
    at in-scope neighbours, so the restriction is faithful.  Colorful core
    numbers are canonical (independent of tie order among minimum-degree
    vertices), so the maximum matches the dict peel exactly.
    """
    positions = ev.positions()
    if not positions:
        return 0
    from repro.kernel.cores import colorful_core_numbers_mask

    view = ev.view
    kernel = view.kernel
    global_index = view.global_index
    colors = ev.colors()
    colors_global = [-1] * kernel.n
    scope_global = 0
    for p in positions:
        g = global_index[p]
        colors_global[g] = colors[p]
        scope_global |= 1 << g
    cores = colorful_core_numbers_mask(kernel, colors_global, scope_global)
    return max(cores.values(), default=0)


def _colorful_path(ev: _Evaluation) -> int:
    """Longest colorful path of the scope (Definition 11 / Algorithm 4).

    Same total order as the dict DAG — ``(color, str(id))``, where the view's
    ``tie_keys`` are exactly ``str(original id)`` — so the DP computes the
    identical longest-path length without building vertex dicts.
    """
    positions = ev.positions()
    if not positions:
        return 0
    view = ev.view
    adj = view.adj
    scope = ev.scope
    colors = ev.colors()
    tie_keys = view.tie_keys
    ordered = sorted(positions, key=lambda p: (colors[p], tie_keys[p]))
    best = [0] * view.n
    done = 0
    longest = 0
    for p in ordered:
        value = 1
        for q in bits_list(adj[p] & scope & done):
            candidate = best[q] + 1
            if candidate > value:
                value = candidate
        best[p] = value
        done |= 1 << p
        if value > longest:
            longest = value
    return longest


def _evaluate(name: str, ev: _Evaluation) -> int:
    if name == "ubs":
        return ev.scope.bit_count()
    if name == "uba":
        count_a = (ev.scope & ev.view.attr_a).bit_count()
        count_b = ev.scope.bit_count() - count_a
        return min(count_a + count_b, 2 * min(count_a, count_b) + ev.delta)
    if name == "ubc":
        return len(ev.class_masks())
    if name == "ubac":
        colors_a, colors_b = ev.attribute_color_sets()
        len_a, len_b = colors_a.bit_count(), colors_b.bit_count()
        return min(len_a + len_b, 2 * min(len_a, len_b) + ev.delta)
    if name == "ubeac":
        colors_a, colors_b = ev.attribute_color_sets()
        mixed = colors_a & colors_b
        count_a = (colors_a & ~mixed).bit_count()
        count_b = (colors_b & ~mixed).bit_count()
        count_mixed = mixed.bit_count()
        total = count_a + count_b + count_mixed
        return min(
            total,
            2 * balanced_split_value(count_a, count_b, count_mixed) + ev.delta,
        )
    if name == "ub_deg":
        return _scope_degeneracy(ev) + 1
    if name == "ub_h":
        adj = ev.view.adj
        scope = ev.scope
        return h_index_of_values(
            (adj[p] & scope).bit_count() for p in ev.positions()
        ) + 1
    if name == "ubcd":
        return 2 * (_colorful_degeneracy(ev) + 1) + ev.delta
    if name == "ubch":
        return 2 * (h_index_of_values(ev.min_colorful_degrees()) + 1) + ev.delta
    if name == "ubcp":
        return _colorful_path(ev)
    raise KeyError(name)


def evaluate_bound(
    view: SubgraphView,
    bound: UpperBound,
    clique_mask: int,
    cand_mask: int,
    k: int,
    delta: int,
) -> int:
    """Evaluate one named bound on a ``(R, C)`` instance of ``view``.

    Dispatches to the native kernel evaluator when one exists and otherwise
    falls back to the bound's dict implementation; used by the parity suite to
    pin the two paths value-for-value.
    """
    ev = _Evaluation(view, clique_mask, cand_mask, k, delta)
    if bound.name in KERNEL_BOUNDS:
        return _evaluate(bound.name, ev)
    return bound(ev.fallback_context())


def stack_prunes(
    view: SubgraphView,
    stack: BoundStack,
    clique_mask: int,
    cand_mask: int,
    k: int,
    delta: int,
    threshold: int,
) -> bool:
    """Kernel analogue of :meth:`BoundStack.prunes` for one ``(R, C)`` instance.

    Bounds are consulted in the stack's cheapest-first order; the first value
    at or below ``threshold`` short-circuits, exactly like the dict path.
    """
    ev = _Evaluation(view, clique_mask, cand_mask, k, delta)
    for bound in stack.bounds:
        if bound.name in KERNEL_BOUNDS:
            value = _evaluate(bound.name, ev)
        else:
            value = bound(ev.fallback_context())
        if value <= threshold:
            return True
    return False


def stack_evaluate(
    view: SubgraphView,
    stack: BoundStack,
    clique_mask: int,
    cand_mask: int,
    k: int,
    delta: int,
) -> int:
    """Kernel analogue of :meth:`BoundStack.evaluate`: min over all bounds."""
    ev = _Evaluation(view, clique_mask, cand_mask, k, delta)
    values = []
    for bound in stack.bounds:
        if bound.name in KERNEL_BOUNDS:
            values.append(_evaluate(bound.name, ev))
        else:
            values.append(bound(ev.fallback_context()))
    return min(values)
