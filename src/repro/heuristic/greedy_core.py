"""Shared greedy machinery for the heuristic fair-clique algorithms (Section V).

Both ``DegHeur`` (degree-based greedy, Algorithm 5) and ``ColorfulDegHeur``
(colorful-degree-based greedy) grow a clique one vertex at a time, alternating
between the two attributes to keep the count difference small, and always
picking the candidate with the highest *score* — plain degree for ``DegHeur``,
``min(D_a, D_b)`` for ``ColorfulDegHeur``.  The only difference between the
two algorithms is the scoring function, so the growth loop lives here and the
public algorithms are thin wrappers.

The greedy expansion may finish with an unbalanced clique; because every
subset of a clique is a clique, the result is post-trimmed to the best fair
subset (majority attribute reduced to ``minority + delta``), which converts a
near-miss into a valid relative fair clique whenever the counts allow it.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.graph.attributed_graph import AttributedGraph, Vertex
from repro.graph.validation import validate_binary_attributes, validate_parameters
from repro.search.verification import best_fair_subset

ScoreFunction = Callable[[Vertex], float]


def greedy_grow_clique(
    graph: AttributedGraph,
    start: Vertex,
    k: int,
    delta: int,
    score: ScoreFunction,
) -> frozenset:
    """Grow a clique from ``start`` with attribute-alternating greedy selection.

    At every step the algorithm prefers the attribute currently in the
    minority inside the clique (ties go to the attribute opposite to the last
    added vertex, mirroring the paper's alternation), and among candidates of
    that attribute picks the one with the highest ``score``.  If no candidate
    of the preferred attribute exists it falls back to the other attribute.
    Growth stops when the candidate set empties.

    The loop runs on the compiled bitset kernel: the candidate set is an int
    mask, attribute filtering is one AND, and shrinking to the common
    neighbourhood is ``candidates &= adj[winner]``.  Vertex selection is
    identical to the reference set-based loop (same ``(score, str(id))``
    maximisation), so the grown clique is the same.

    Returns the grown clique *without* the fairness trim; callers usually pass
    the result through :func:`finalize_fair_clique`.
    """
    validate_binary_attributes(graph)
    kernel = graph.compile()
    adj = kernel.adj_bits
    attr_a_mask = kernel.attr_masks[0]
    vertex_of = kernel.vertex_of
    tie_keys = kernel.tie_keys

    start_index = kernel.index_of[start]
    clique_mask = 1 << start_index
    candidates = adj[start_index]
    count_a = 1 if kernel.attr_codes[start_index] == 0 else 0
    count_b = 1 - count_a

    while candidates:
        minority_is_a = count_a <= count_b
        preferred = candidates & (attr_a_mask if minority_is_a else ~attr_a_mask)
        pool = preferred or candidates
        # Refuse to deepen an imbalance that could never be repaired: adding a
        # majority vertex is pointless once the other side has no candidates
        # left to catch up with.
        if not preferred:
            minority_count = count_a if minority_is_a else count_b
            majority_count = count_b if minority_is_a else count_a
            if majority_count >= minority_count + delta:
                break
        winner = -1
        winner_key: tuple | None = None
        remaining = pool
        while remaining:
            low = remaining & -remaining
            index = low.bit_length() - 1
            key = (score(vertex_of[index]), tie_keys[index])
            if winner_key is None or key > winner_key:
                winner_key = key
                winner = index
            remaining ^= low
        clique_mask |= 1 << winner
        if kernel.attr_codes[winner] == 0:
            count_a += 1
        else:
            count_b += 1
        candidates &= adj[winner]
    return kernel.frozenset_of_mask(clique_mask)


def greedy_grow_clique_reference(
    graph: AttributedGraph,
    start: Vertex,
    k: int,
    delta: int,
    score: ScoreFunction,
) -> frozenset:
    """The original set-based growth loop, kept as a parity oracle for the kernel path."""
    attribute_a, attribute_b = validate_binary_attributes(graph)
    clique: set[Vertex] = {start}
    candidates: set[Vertex] = set(graph.neighbors(start))
    counts = {attribute_a: 0, attribute_b: 0}
    counts[graph.attribute(start)] += 1

    while candidates:
        minority = attribute_a if counts[attribute_a] <= counts[attribute_b] else attribute_b
        preferred = [v for v in candidates if graph.attribute(v) == minority]
        pool = preferred or list(candidates)
        if not preferred:
            other = attribute_b if minority == attribute_a else attribute_a
            if counts[other] >= counts[minority] + delta:
                break
        best_vertex = max(pool, key=lambda v: (score(v), str(v)))
        clique.add(best_vertex)
        counts[graph.attribute(best_vertex)] += 1
        candidates = candidates & graph.neighbors(best_vertex)
    return frozenset(clique)


def finalize_fair_clique(
    graph: AttributedGraph,
    clique: frozenset,
    k: int,
    delta: int,
) -> frozenset:
    """Trim a clique to its best fair subset (empty when no fair subset exists)."""
    validate_parameters(k, delta)
    return best_fair_subset(graph, clique, k, delta)


def greedy_fair_clique(
    graph: AttributedGraph,
    k: int,
    delta: int,
    score: ScoreFunction,
    restarts: int = 1,
) -> frozenset:
    """Run the greedy growth from the ``restarts`` highest-scoring start vertices.

    The paper starts from the single best-scoring vertex; ``restarts > 1`` is a
    cheap robustness extension (still linear time per restart) exposed for the
    ablation benchmarks.  Returns the largest fair clique over all restarts.
    """
    validate_parameters(k, delta)
    if graph.num_vertices == 0:
        return frozenset()
    starts = sorted(graph.vertices(), key=lambda v: (-score(v), str(v)))[:max(1, restarts)]
    best: frozenset = frozenset()
    for start in starts:
        grown = greedy_grow_clique(graph, start, k, delta, score)
        fair = finalize_fair_clique(graph, grown, k, delta)
        if len(fair) > len(best):
            best = fair
    return best
