"""Colorful-core-based greedy — an extension strategy for the heuristic framework.

The two greedy procedures of the paper score vertices by degree and by
colorful degree.  Both scores can be misled by dense-but-cliqueless regions
(hubs, quasi-cliques) whose vertices have high degrees yet sit in no large
fair clique.  The *colorful core number* ``ccore(v)`` (Definition 8) is a much
sharper signal: a vertex inside a fair clique with ``min(s_a, s_b)`` vertices
per attribute has ``ccore(v) >= min(s_a, s_b) - 1``, whereas quasi-clique
vertices have small colorful core numbers because their neighbourhoods reuse
colors heavily.

This module adds a third greedy procedure that scores vertices by their
colorful core number.  It keeps the linear-time character of the framework
(one colorful core decomposition plus one greedy growth) and is used by
``HeurRFC`` alongside the paper's two strategies; the ablation benchmark
``bench_ablation_heuristic_strategies`` quantifies its contribution.
"""

from __future__ import annotations

from repro.coloring.greedy import greedy_coloring
from repro.cores.colorful import colorful_core_numbers
from repro.graph.attributed_graph import AttributedGraph
from repro.heuristic.greedy_core import greedy_fair_clique


def colorful_core_greedy_fair_clique(
    graph: AttributedGraph,
    k: int,
    delta: int,
    restarts: int = 1,
) -> frozenset:
    """Return the fair clique found by the colorful-core-number greedy (possibly empty)."""
    if graph.num_vertices == 0:
        return frozenset()
    coloring = greedy_coloring(graph)
    cores = colorful_core_numbers(graph, coloring)
    return greedy_fair_clique(
        graph, k, delta,
        score=lambda vertex: cores.get(vertex, 0),
        restarts=restarts,
    )
