"""Linear-time heuristics for finding a large relative fair clique (Section V)."""

from repro.heuristic.colorful_core_greedy import colorful_core_greedy_fair_clique
from repro.heuristic.colorful_degree_greedy import colorful_degree_greedy_fair_clique
from repro.heuristic.degree_greedy import degree_greedy_fair_clique
from repro.heuristic.greedy_core import (
    finalize_fair_clique,
    greedy_fair_clique,
    greedy_grow_clique,
)
from repro.heuristic.heur_rfc import HeuristicOutcome, HeurRFC, heuristic_fair_clique

__all__ = [
    "colorful_core_greedy_fair_clique",
    "colorful_degree_greedy_fair_clique",
    "degree_greedy_fair_clique",
    "finalize_fair_clique",
    "greedy_fair_clique",
    "greedy_grow_clique",
    "HeuristicOutcome",
    "HeurRFC",
    "heuristic_fair_clique",
]
