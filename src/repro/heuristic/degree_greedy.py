"""DegHeur — the degree-based greedy heuristic (Algorithm 5).

Starting from the highest-degree vertex, the heuristic repeatedly adds the
highest-degree candidate of the attribute currently in the minority, shrinking
the candidate set to the common neighbourhood after every addition, and
finally trims the grown clique to its best fair subset.  Runs in O(|V| + |E|)
time: every vertex is considered at most once as a candidate and the candidate
set only shrinks.
"""

from __future__ import annotations

from repro.graph.attributed_graph import AttributedGraph
from repro.heuristic.greedy_core import greedy_fair_clique


def degree_greedy_fair_clique(
    graph: AttributedGraph,
    k: int,
    delta: int,
    restarts: int = 1,
) -> frozenset:
    """Return the fair clique found by the degree-based greedy (possibly empty).

    Examples
    --------
    >>> from repro.graph import paper_example_graph
    >>> clique = degree_greedy_fair_clique(paper_example_graph(), k=3, delta=1)
    >>> len(clique) >= 6
    True
    """
    return greedy_fair_clique(graph, k, delta, score=graph.degree, restarts=restarts)
