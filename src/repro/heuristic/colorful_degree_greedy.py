"""ColorfulDegHeur — the colorful-degree-based greedy heuristic (Section V).

Identical growth loop to ``DegHeur`` but vertices are scored by
``min(D_a(v), D_b(v))`` — the minimum over the two attributes of the number of
distinct neighbour colors — which rewards vertices whose neighbourhood can
supply *both* attributes with many mutually non-adjacent-free (distinctly
colored) vertices, a better proxy for fair-clique potential than raw degree.
"""

from __future__ import annotations

from repro.coloring.greedy import greedy_coloring
from repro.cores.colorful import min_colorful_degrees
from repro.graph.attributed_graph import AttributedGraph
from repro.heuristic.greedy_core import greedy_fair_clique


def colorful_degree_greedy_fair_clique(
    graph: AttributedGraph,
    k: int,
    delta: int,
    restarts: int = 1,
) -> frozenset:
    """Return the fair clique found by the colorful-degree greedy (possibly empty)."""
    if graph.num_vertices == 0:
        return frozenset()
    coloring = greedy_coloring(graph)
    minima = min_colorful_degrees(graph, coloring)
    return greedy_fair_clique(
        graph, k, delta,
        score=lambda vertex: minima.get(vertex, 0),
        restarts=restarts,
    )
