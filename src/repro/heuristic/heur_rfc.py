"""HeurRFC — the combined heuristic framework (Algorithm 6).

``HeurRFC`` runs the greedy procedures and keeps the largest result, using the
intermediate clique to prune the graph between the runs:

1. ``R* ← DegHeur(G)``;
2. restrict ``G`` to its ``(|R*| - 1)``-core — a larger fair clique must live
   there because every member of an ``s``-clique has degree at least
   ``s - 1``;
3. ``R̂ ← ColorfulDegHeur(G)``; keep the larger of ``R*`` and ``R̂`` and
   re-prune;
4. (extension) repeat step 3 with the colorful-core-number greedy, which is
   far harder to mislead by dense-but-cliqueless regions;
5. recolor the surviving graph; the number of colors is a global upper bound
   on the maximum fair clique size.

The returned object carries the clique, that color upper bound, and the final
coloring — exactly the triple Algorithm 6 outputs — so the exact search can
reuse all three.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.coloring.greedy import Coloring, greedy_coloring, num_colors
from repro.cores.kcore import k_core
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.validation import validate_parameters
from repro.heuristic.colorful_core_greedy import colorful_core_greedy_fair_clique
from repro.heuristic.colorful_degree_greedy import colorful_degree_greedy_fair_clique
from repro.heuristic.degree_greedy import degree_greedy_fair_clique
from repro.search.result import SearchResult
from repro.search.statistics import SearchStats


@dataclass
class HeuristicOutcome:
    """The triple returned by Algorithm 6: clique, color upper bound, coloring."""

    clique: frozenset
    upper_bound: int
    coloring: Coloring
    pruned_graph: AttributedGraph
    seconds: float

    @property
    def size(self) -> int:
        """Size of the heuristic fair clique."""
        return len(self.clique)


class HeurRFC:
    """The heuristic framework combining DegHeur and ColorfulDegHeur.

    ``restarts`` controls how many top-scoring start vertices each greedy
    procedure tries (the paper uses a single start; a handful of restarts is a
    cheap robustness extension and remains linear time per restart).
    """

    def __init__(self, restarts: int = 4) -> None:
        self.restarts = restarts

    def run(self, graph: AttributedGraph, k: int, delta: int) -> HeuristicOutcome:
        """Execute Algorithm 6 (plus the colorful-core strategy) and return the triple."""
        validate_parameters(k, delta)
        started = time.monotonic()
        working = graph
        best = degree_greedy_fair_clique(working, k, delta, self.restarts)
        if best:
            working = self._core_prune(graph, len(best))
        for strategy in (colorful_degree_greedy_fair_clique, colorful_core_greedy_fair_clique):
            challenger = (
                strategy(working, k, delta, self.restarts)
                if working.num_vertices
                else frozenset()
            )
            if len(challenger) > len(best):
                best = challenger
                working = self._core_prune(graph, len(best))
        coloring = greedy_coloring(working) if working.num_vertices else {}
        upper_bound = num_colors(coloring)
        return HeuristicOutcome(
            clique=best,
            upper_bound=upper_bound,
            coloring=coloring,
            pruned_graph=working,
            seconds=time.monotonic() - started,
        )

    def solve(self, graph: AttributedGraph, k: int, delta: int) -> SearchResult:
        """Run the heuristic and wrap the outcome as a :class:`SearchResult`."""
        outcome = self.run(graph, k, delta)
        stats = SearchStats(heuristic_seconds=outcome.seconds)
        stats.extra["color_upper_bound"] = outcome.upper_bound
        return SearchResult(
            clique=outcome.clique,
            k=k,
            delta=delta,
            stats=stats,
            algorithm="HeurRFC",
            optimal=False,
        )

    def _core_prune(self, graph: AttributedGraph, clique_size: int) -> AttributedGraph:
        """Restrict to the ``(clique_size - 1)``-core, where any larger fair clique must live."""
        if clique_size <= 1:
            return graph
        survivors = k_core(graph, clique_size - 1)
        return graph.subgraph(survivors)


def heuristic_fair_clique(
    graph: AttributedGraph,
    k: int,
    delta: int,
    restarts: int = 1,
) -> SearchResult:
    """Convenience wrapper: run :class:`HeurRFC` and return its :class:`SearchResult`."""
    return HeurRFC(restarts=restarts).solve(graph, k, delta)
