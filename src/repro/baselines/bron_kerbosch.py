"""Bron–Kerbosch maximal clique enumeration (with pivoting).

The paper's introduction argues that solving the maximum fair clique problem
by *enumerating* all fair cliques is hopeless at scale; this module provides
that enumeration-style baseline (and the classic maximal-clique enumerator it
is built on) so the comparison can be reproduced, and so the test suite has an
independent oracle to validate the branch-and-bound against.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.graph.attributed_graph import AttributedGraph, Vertex


def enumerate_maximal_cliques(
    graph: AttributedGraph,
    vertices: Iterable[Vertex] | None = None,
) -> Iterator[frozenset]:
    """Yield every maximal clique of the (induced sub)graph.

    Implements the Bron–Kerbosch algorithm with Tomita-style pivoting: at each
    node the pivot is the vertex of ``P ∪ X`` with the most neighbours in
    ``P``, and only non-neighbours of the pivot are branched on, which bounds
    the recursion tree by O(3^(n/3)).
    """
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    if not scope:
        return

    def neighbors(vertex: Vertex) -> set[Vertex]:
        return {u for u in graph.neighbors(vertex) if u in scope}

    def expand(clique: set[Vertex], candidates: set[Vertex], excluded: set[Vertex]):
        if not candidates and not excluded:
            yield frozenset(clique)
            return
        pivot_pool = candidates | excluded
        pivot = max(pivot_pool, key=lambda v: len(neighbors(v) & candidates))
        for vertex in list(candidates - neighbors(pivot)):
            vertex_neighbors = neighbors(vertex)
            yield from expand(
                clique | {vertex},
                candidates & vertex_neighbors,
                excluded & vertex_neighbors,
            )
            candidates.discard(vertex)
            excluded.add(vertex)

    yield from expand(set(), set(scope), set())


def maximum_clique(graph: AttributedGraph,
                   vertices: Iterable[Vertex] | None = None) -> frozenset:
    """Return a maximum clique (ignoring attributes) via maximal-clique enumeration."""
    best: frozenset = frozenset()
    for clique in enumerate_maximal_cliques(graph, vertices):
        if len(clique) > len(best):
            best = clique
    return best


def maximum_clique_size(graph: AttributedGraph,
                        vertices: Iterable[Vertex] | None = None) -> int:
    """Return the clique number of the (induced sub)graph."""
    return len(maximum_clique(graph, vertices))
