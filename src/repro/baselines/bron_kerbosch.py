"""Bron–Kerbosch maximal clique enumeration (with pivoting).

The paper's introduction argues that solving the maximum fair clique problem
by *enumerating* all fair cliques is hopeless at scale; this module provides
that enumeration-style baseline (and the classic maximal-clique enumerator it
is built on) so the comparison can be reproduced, and so the test suite has an
independent oracle to validate the branch-and-bound against.

Since the kernel PR the enumeration runs on the compiled bitset snapshot
(:mod:`repro.kernel.cliques`): ``P``/``X``/``R`` are int bitmasks and the
pivot scan is an AND + popcount instead of a rebuilt scope-filtered
neighbour set per probe.  The pure-set implementation survives as
:func:`enumerate_maximal_cliques_reference` — it is the independent oracle
the parity suite compares the bitset enumerator against, so the two must not
share code.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.graph.attributed_graph import AttributedGraph, Vertex


def enumerate_maximal_cliques(
    graph: AttributedGraph,
    vertices: Iterable[Vertex] | None = None,
) -> Iterator[frozenset]:
    """Yield every maximal clique of the (induced sub)graph.

    Implements the Bron–Kerbosch algorithm with Tomita-style pivoting on the
    compiled bitset kernel: at each node the pivot is the vertex of ``P ∪ X``
    with the most neighbours in ``P``, and only non-neighbours of the pivot
    are branched on, which bounds the recursion tree by O(3^(n/3)).  Each
    maximal clique is yielded exactly once; the emission order is
    unspecified.
    """
    from repro.kernel.cliques import enumerate_maximal_clique_masks

    kernel = graph.compile()
    if vertices is None:
        scope_mask = kernel.full_mask
    else:
        scope_mask = kernel.mask_of(vertices)
    if not scope_mask:
        return
    for clique_mask in enumerate_maximal_clique_masks(kernel.adj_bits, scope_mask):
        yield kernel.frozenset_of_mask(clique_mask)


def enumerate_maximal_cliques_reference(
    graph: AttributedGraph,
    vertices: Iterable[Vertex] | None = None,
) -> Iterator[frozenset]:
    """Pure-set Bron–Kerbosch, kept as an independent oracle for the kernel path.

    The scope-filtered neighbourhood of each vertex is computed once and
    cached (the original rebuilt it on every pivot probe and every branch).
    """
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    if not scope:
        return

    neighbor_cache: dict[Vertex, set[Vertex]] = {}

    def neighbors(vertex: Vertex) -> set[Vertex]:
        cached = neighbor_cache.get(vertex)
        if cached is None:
            cached = graph.neighbors(vertex) & scope
            neighbor_cache[vertex] = cached
        return cached

    def expand(clique: set[Vertex], candidates: set[Vertex], excluded: set[Vertex]):
        if not candidates and not excluded:
            yield frozenset(clique)
            return
        pivot_pool = candidates | excluded
        pivot = max(pivot_pool, key=lambda v: len(neighbors(v) & candidates))
        for vertex in list(candidates - neighbors(pivot)):
            vertex_neighbors = neighbors(vertex)
            yield from expand(
                clique | {vertex},
                candidates & vertex_neighbors,
                excluded & vertex_neighbors,
            )
            candidates.discard(vertex)
            excluded.add(vertex)

    yield from expand(set(), set(scope), set())


def maximum_clique(graph: AttributedGraph,
                   vertices: Iterable[Vertex] | None = None) -> frozenset:
    """Return a maximum clique (ignoring attributes) via maximal-clique enumeration."""
    best: frozenset = frozenset()
    for clique in enumerate_maximal_cliques(graph, vertices):
        if len(clique) > len(best):
            best = clique
    return best


def maximum_clique_size(graph: AttributedGraph,
                        vertices: Iterable[Vertex] | None = None) -> int:
    """Return the clique number of the (induced sub)graph."""
    return len(maximum_clique(graph, vertices))
