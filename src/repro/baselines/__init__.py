"""Baseline algorithms: maximal-clique enumeration and brute-force fair clique search."""

from repro.baselines.bron_kerbosch import (
    enumerate_maximal_cliques,
    maximum_clique,
    maximum_clique_size,
)
from repro.baselines.enumeration import (
    brute_force_maximum_fair_clique,
    count_fair_cliques,
    enumerate_fair_cliques,
)

__all__ = [
    "enumerate_maximal_cliques",
    "maximum_clique",
    "maximum_clique_size",
    "brute_force_maximum_fair_clique",
    "count_fair_cliques",
    "enumerate_fair_cliques",
]
