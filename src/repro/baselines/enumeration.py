"""Enumeration-based baselines for the maximum relative fair clique problem.

Two baselines live here:

* :func:`brute_force_maximum_fair_clique` — the "enumerate everything"
  approach the paper's introduction argues against.  Every maximal clique is
  enumerated with Bron–Kerbosch and its best fair subset is extracted; the
  result is provably optimal because (a) every clique lies inside some maximal
  clique and (b) any subset of a clique is again a clique, so the best fair
  subset of the enclosing maximal clique is at least as large as any fair
  clique it contains.  This serves as the correctness oracle for MaxRFC in the
  test suite and as the slow baseline in the benchmarks.

* :func:`enumerate_fair_cliques` — yields one maximal relative fair clique per
  maximal clique of the graph (the best fair trim of that maximal clique).
  This is a representative sample of the fair-clique enumeration problem
  studied by the earlier papers, not a complete enumeration: two different
  fair cliques inside the same maximal clique are reported once.
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from repro.baselines.bron_kerbosch import enumerate_maximal_cliques
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.validation import validate_parameters
from repro.search.result import SearchResult
from repro.search.statistics import SearchStats
from repro.search.verification import best_fair_subset, fairness_satisfied


def brute_force_maximum_fair_clique(
    graph: AttributedGraph,
    k: int,
    delta: int,
) -> SearchResult:
    """Optimal maximum fair clique via exhaustive maximal-clique enumeration."""
    validate_parameters(k, delta)
    started = time.monotonic()
    stats = SearchStats()
    best: frozenset = frozenset()
    if len(graph.attribute_values()) == 2:
        for maximal in enumerate_maximal_cliques(graph):
            stats.branches_explored += 1
            candidate = best_fair_subset(graph, maximal, k, delta)
            if len(candidate) > len(best):
                best = candidate
                stats.solutions_found += 1
    stats.search_seconds = time.monotonic() - started
    return SearchResult(
        clique=best,
        k=k,
        delta=delta,
        stats=stats,
        algorithm="BruteForceEnum",
        optimal=True,
    )


def enumerate_fair_cliques(
    graph: AttributedGraph,
    k: int,
    delta: int,
) -> Iterator[frozenset]:
    """Yield maximal relative fair cliques of ``graph``, one per maximal clique.

    The enumeration walks all maximal cliques and, for each one whose
    attribute counts admit a fair subset, yields the largest fair subset
    obtained by trimming the majority attribute.  Every yielded set is a
    genuine fair clique that cannot be fairly extended *within its enclosing
    maximal clique*; distinct fair cliques living inside the same maximal
    clique are reported once.  Intentionally simple — it exists as a baseline
    and as a test oracle, not as a complete enumerator.
    """
    validate_parameters(k, delta)
    if len(graph.attribute_values()) != 2:
        return
    seen: set[frozenset] = set()
    attribute_a, attribute_b = graph.attribute_pair()
    for maximal in enumerate_maximal_cliques(graph):
        members_a = sorted((v for v in maximal if graph.attribute(v) == attribute_a), key=str)
        members_b = sorted((v for v in maximal if graph.attribute(v) == attribute_b), key=str)
        count_a, count_b = len(members_a), len(members_b)
        if count_a < k or count_b < k:
            continue
        keep_a = min(count_a, count_b + delta)
        keep_b = min(count_b, count_a + delta)
        candidate = frozenset(members_a[:keep_a] + members_b[:keep_b])
        if candidate in seen:
            continue
        if fairness_satisfied(graph, candidate, k, delta):
            seen.add(candidate)
            yield candidate


def count_fair_cliques(graph: AttributedGraph, k: int, delta: int) -> int:
    """Count the maximal fair cliques produced by :func:`enumerate_fair_cliques`."""
    return sum(1 for _ in enumerate_fair_cliques(graph, k, delta))
