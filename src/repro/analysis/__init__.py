"""Descriptive statistics and fairness metrics for attributed graphs and cliques."""

from repro.analysis.fairness_metrics import (
    CliqueReport,
    attribute_assortativity,
    balance_ratio,
    count_gap,
    describe_clique,
    fairness_satisfaction,
)
from repro.analysis.graph_stats import (
    GraphSummary,
    average_clustering_coefficient,
    average_degree,
    degree_histogram,
    density,
    local_clustering_coefficient,
    summarize_graph,
    triangle_count,
)

__all__ = [
    "CliqueReport",
    "attribute_assortativity",
    "balance_ratio",
    "count_gap",
    "describe_clique",
    "fairness_satisfaction",
    "GraphSummary",
    "average_clustering_coefficient",
    "average_degree",
    "degree_histogram",
    "density",
    "local_clustering_coefficient",
    "summarize_graph",
    "triangle_count",
]
