"""Structural statistics of attributed graphs.

The experiment drivers and case studies need light-weight descriptive
statistics (the kind reported in the paper's Table I plus standard structure
measures) to characterise inputs and reduced graphs: degree distribution
summaries, triangle counts, clustering coefficients, density, and component
structure.  Everything here is O(|V| + |E|) or O(α·|E|) and dependency-free.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.graph.attributed_graph import AttributedGraph, Vertex
from repro.graph.components import connected_components


def degree_histogram(graph: AttributedGraph) -> dict[int, int]:
    """Return ``{degree: number of vertices with that degree}``."""
    histogram: dict[int, int] = {}
    for vertex in graph.vertices():
        degree = graph.degree(vertex)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_degree(graph: AttributedGraph) -> float:
    """Return the mean vertex degree (0.0 for an empty graph)."""
    if graph.num_vertices == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_vertices


def density(graph: AttributedGraph) -> float:
    """Return ``|E| / (|V| choose 2)`` (0.0 when fewer than two vertices)."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2)


def triangle_count(graph: AttributedGraph, vertices: Iterable[Vertex] | None = None) -> int:
    """Count triangles in the (induced sub)graph.

    Each triangle is counted once; the iteration over each edge's smaller
    endpoint neighbourhood gives the usual O(α·|E|) behaviour.
    """
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    rank = {vertex: index for index, vertex in enumerate(sorted(scope, key=str))}
    count = 0
    for u in scope:
        higher_u = {v for v in graph.neighbors(u) if v in scope and rank[v] > rank[u]}
        for v in higher_u:
            count += sum(1 for w in graph.neighbors(v)
                         if w in higher_u and rank[w] > rank[v])
    return count


def local_clustering_coefficient(graph: AttributedGraph, vertex: Vertex) -> float:
    """Fraction of a vertex's neighbour pairs that are themselves adjacent."""
    neighbors = graph.neighbors(vertex)
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    ordered = sorted(neighbors, key=str)
    links = 0
    for index, u in enumerate(ordered):
        u_neighbors = graph.neighbors(u)
        links += sum(1 for v in ordered[index + 1:] if v in u_neighbors)
    return 2.0 * links / (degree * (degree - 1))


def average_clustering_coefficient(graph: AttributedGraph) -> float:
    """Mean of the local clustering coefficients (0.0 for an empty graph)."""
    if graph.num_vertices == 0:
        return 0.0
    total = sum(local_clustering_coefficient(graph, vertex) for vertex in graph.vertices())
    return total / graph.num_vertices


@dataclass(frozen=True)
class GraphSummary:
    """A Table I-style row of descriptive statistics for one graph."""

    num_vertices: int
    num_edges: int
    max_degree: int
    average_degree: float
    density: float
    triangles: int
    average_clustering: float
    num_components: int
    attribute_histogram: dict

    def as_dict(self) -> dict:
        """Flat dictionary (for table/CSV reporting)."""
        return {
            "n": self.num_vertices,
            "m": self.num_edges,
            "d_max": self.max_degree,
            "avg_degree": round(self.average_degree, 3),
            "density": round(self.density, 5),
            "triangles": self.triangles,
            "avg_clustering": round(self.average_clustering, 4),
            "components": self.num_components,
            "attributes": self.attribute_histogram,
        }


def summarize_graph(graph: AttributedGraph) -> GraphSummary:
    """Compute the full :class:`GraphSummary` for ``graph``."""
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree(),
        average_degree=average_degree(graph),
        density=density(graph),
        triangles=triangle_count(graph),
        average_clustering=average_clustering_coefficient(graph),
        num_components=sum(1 for _ in connected_components(graph)),
        attribute_histogram=graph.attribute_histogram(),
    )
