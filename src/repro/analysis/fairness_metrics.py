"""Fairness metrics for vertex sets and for whole attributed graphs.

The case studies of the paper argue qualitatively that the returned teams are
"balanced"; these helpers make that quantitative so reports and examples can
state the balance of a clique, the attribute mixing of a graph, and how close
a vertex set comes to satisfying a (k, delta) requirement.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.graph.attributed_graph import AttributedGraph, Vertex
from repro.graph.validation import validate_parameters


def balance_ratio(graph: AttributedGraph, vertices: Iterable[Vertex]) -> float:
    """Return ``min count / max count`` over attribute values present in the set.

    1.0 means perfectly balanced; 0.0 means at least one attribute value of
    the graph is absent from the set.  An empty set scores 0.0.
    """
    members = list(vertices)
    if not members:
        return 0.0
    histogram = graph.attribute_histogram(members)
    counts = [histogram.get(value, 0) for value in graph.attribute_values()]
    if not counts or min(counts) == 0:
        return 0.0
    return min(counts) / max(counts)


def count_gap(graph: AttributedGraph, vertices: Iterable[Vertex]) -> int:
    """Return ``max count - min count`` over the graph's attribute values."""
    members = list(vertices)
    histogram = graph.attribute_histogram(members)
    counts = [histogram.get(value, 0) for value in graph.attribute_values()]
    if not counts:
        return 0
    return max(counts) - min(counts)


def fairness_satisfaction(
    graph: AttributedGraph,
    vertices: Iterable[Vertex],
    k: int,
    delta: int,
) -> dict:
    """Diagnose how a vertex set fares against a (k, delta) requirement.

    Returns a dictionary with per-attribute counts, the shortfall of each
    attribute against ``k``, the count gap against ``delta``, and an overall
    ``satisfied`` flag.  Useful for explaining *why* a candidate team fails.
    """
    validate_parameters(k, delta)
    members = list(vertices)
    histogram = graph.attribute_histogram(members)
    values = graph.attribute_values()
    counts = {value: histogram.get(value, 0) for value in values}
    shortfalls = {value: max(0, k - count) for value, count in counts.items()}
    gap = count_gap(graph, members)
    return {
        "counts": counts,
        "shortfalls": shortfalls,
        "gap": gap,
        "gap_excess": max(0, gap - delta),
        "satisfied": all(value == 0 for value in shortfalls.values()) and gap <= delta,
    }


def attribute_assortativity(graph: AttributedGraph) -> float:
    """Fraction of edges joining two vertices of the *same* attribute value.

    0.5 is the expectation for a random balanced binary assignment; values
    near 1.0 mean the attribute is highly clustered (which makes fair cliques
    scarcer), values near 0.0 mean the graph is close to multipartite by
    attribute.
    """
    if graph.num_edges == 0:
        return 0.0
    same = sum(1 for u, v in graph.edges() if graph.attribute(u) == graph.attribute(v))
    return same / graph.num_edges


@dataclass(frozen=True)
class CliqueReport:
    """A human-readable summary of one (fair) clique."""

    size: int
    counts: dict
    balance: float
    gap: int
    is_clique: bool

    def as_dict(self) -> dict:
        """Flat dictionary (for table/CSV reporting)."""
        return {
            "size": self.size,
            "counts": self.counts,
            "balance": round(self.balance, 3),
            "gap": self.gap,
            "is_clique": self.is_clique,
        }


def describe_clique(graph: AttributedGraph, vertices: Iterable[Vertex]) -> CliqueReport:
    """Build a :class:`CliqueReport` for an arbitrary vertex set."""
    members = list(dict.fromkeys(vertices))
    return CliqueReport(
        size=len(members),
        counts=graph.attribute_histogram(members),
        balance=balance_ratio(graph, members),
        gap=count_gap(graph, members),
        is_clique=graph.is_clique(members),
    )
