"""Experiment: case studies (Section VI-C).

Runs the exact search on the four labelled case-study graphs (Aminer, DBAI,
NBA, IMDB) with the paper's parameters and reports the discovered team: its
size, its attribute balance, and its member labels.  The qualitative claims
being reproduced are that (a) the returned set is a genuine clique, (b) both
attribute groups are represented with at least ``k`` members, and (c) the
balance gap does not exceed ``delta`` — i.e. the model surfaces large,
well-connected, demographically balanced teams rather than the raw maximum
clique (which in every stand-in is deliberately unbalanced).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datasets.case_studies import build_case_study_graph, case_study_names, get_case_study
from repro.experiments.reporting import format_table
from repro.search.maxrfc import find_maximum_fair_clique
from repro.search.verification import is_relative_fair_clique


def run_case_study_experiment(
    names: Sequence[str] | None = None,
    seed: int = 0,
) -> list[dict]:
    """Run all case studies; one row per case study."""
    rows: list[dict] = []
    for name in names or case_study_names():
        spec = get_case_study(name)
        graph = build_case_study_graph(name, seed=seed)
        result = find_maximum_fair_clique(graph, spec.k, spec.delta)
        balance = result.attribute_balance(graph)
        members = sorted(graph.label(vertex) for vertex in result.clique)
        rows.append(
            {
                "case_study": spec.name,
                "k": spec.k,
                "delta": spec.delta,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "team_size": result.size,
                "attribute_a": spec.attribute_a,
                "count_a": balance.get(spec.attribute_a, 0),
                "attribute_b": spec.attribute_b,
                "count_b": balance.get(spec.attribute_b, 0),
                "balanced": is_relative_fair_clique(graph, result.clique, spec.k, spec.delta)
                if result.found else False,
                "members": "; ".join(members),
            }
        )
    return rows


def format_case_study_report(rows: list[dict]) -> str:
    """Aligned text table of the case-study teams (member lists omitted for width)."""
    columns = [key for key in rows[0] if key != "members"] if rows else None
    return format_table(
        rows,
        columns=columns,
        title="Section VI-C — case-study maximum fair cliques",
    )
