"""Text rendering of figure series (log-scale bar charts in plain ASCII).

The paper's figures plot runtimes and remaining-graph sizes on log axes.  The
helpers here turn experiment rows into compact text charts so that
``repro-fairclique reproduce fig6`` output can be eyeballed the same way the
figures are, without any plotting dependency.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence


def _bar(value: float, lower: float, upper: float, width: int) -> str:
    """Map ``value`` onto a log-scaled bar of at most ``width`` characters."""
    if value <= 0:
        return ""
    if upper <= lower:
        return "#" * width
    position = (math.log10(value) - lower) / (upper - lower)
    position = min(max(position, 0.0), 1.0)
    return "#" * max(1, int(round(position * width)))


def render_series_chart(
    title: str,
    series: Mapping[str, Sequence[tuple]],
    value_label: str = "value",
    width: int = 40,
) -> str:
    """Render ``{series name: [(x, value), ...]}`` as a log-scale ASCII chart.

    Every ``(x, value)`` pair becomes one bar; series are stacked one block
    after another so different configurations can be compared line by line.
    Zero or negative values render as an empty bar (they cannot sit on a log
    axis).
    """
    values = [value for points in series.values() for _, value in points if value > 0]
    if not values:
        return f"{title}\n(no positive values to plot)"
    lower = math.log10(min(values))
    upper = math.log10(max(values))
    lines = [title]
    x_width = max(
        (len(str(x)) for points in series.values() for x, _ in points),
        default=1,
    )
    for name, points in series.items():
        lines.append(f"  {name}:")
        for x, value in points:
            bar = _bar(value, lower, upper, width)
            lines.append(f"    {str(x).rjust(x_width)} | {bar} {value} {value_label}")
    return "\n".join(lines)


def runtime_chart_from_rows(
    rows: Sequence[Mapping],
    x_key: str = "k",
    series_key: str = "configuration",
    value_key: str = "runtime_us",
    title: str | None = None,
) -> str:
    """Build a runtime chart (one series per configuration) from experiment rows.

    Works directly on the row dictionaries produced by
    :func:`repro.experiments.run_search_experiment` and
    :func:`repro.experiments.run_bounds_experiment`.
    """
    series: dict[str, list[tuple]] = {}
    for row in rows:
        series.setdefault(str(row[series_key]), []).append((row[x_key], row[value_key]))
    for points in series.values():
        points.sort(key=lambda pair: str(pair[0]))
    chart_title = title or f"{value_key} vs {x_key}"
    return render_series_chart(chart_title, series, value_label="us")


def reduction_chart_from_rows(
    rows: Sequence[Mapping],
    dataset: str,
    kind: str = "edges",
    width: int = 40,
) -> str:
    """Build a remaining-|V|/|E| chart for one dataset from Fig. 4/5 rows."""
    stages = ("original", "EnColorfulCore", "ColorfulSup", "EnColorfulSup")
    series: dict[str, list[tuple]] = {stage: [] for stage in stages}
    for row in rows:
        if row["dataset"] != dataset:
            continue
        for stage in stages:
            key = f"{stage}_{kind}" if stage != "original" else f"original_{kind}"
            series[stage].append((row["k"], row[key]))
    for points in series.values():
        points.sort()
    return render_series_chart(
        f"{dataset}: remaining {kind} after each reduction (vary k)",
        series,
        value_label=kind,
        width=width,
    )
