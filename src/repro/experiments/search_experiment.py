"""Experiment: exact-search configurations compared (Fig. 6 and Fig. 7).

The paper compares three configurations of the exact search while varying
``k`` (top row of Fig. 6, Fig. 7a) and ``delta`` (bottom row, Fig. 7b):

* ``MaxRFC``               — reduction pipeline + branch-and-bound, no upper
  bounds beyond the trivial size argument, no heuristic seed;
* ``MaxRFC+ub``            — adds the per-dataset best bound stack from
  Table II;
* ``MaxRFC+ub+HeurRFC``    — additionally seeds the incumbent with the
  linear-time heuristic.

Expected qualitative shape: both augmented configurations are faster than the
plain one (dramatically so on the denser datasets), and runtimes fall as ``k``
rises because the reductions bite harder.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.api import FairCliqueQuery, solve
from repro.datasets.registry import dataset_names, get_dataset
from repro.experiments.reporting import format_table

# The per-dataset best bound reported by the paper (Section VI-B): the
# colorful-path bound for Themarker, Google, Pokec; colorful degeneracy
# elsewhere.  ``run_search_experiment`` accepts overrides.
PAPER_BEST_STACK: dict[str, str] = {
    "Themarker": "ubAD+ubcp",
    "Google": "ubAD+ubcp",
    "Pokec": "ubAD+ubcp",
    "DBLP": "ubAD+ubcd",
    "Flixster": "ubAD+ubcd",
    "Aminer": "ubAD+ubcd",
}

CONFIGURATIONS: tuple[str, ...] = ("MaxRFC", "MaxRFC+ub", "MaxRFC+ub+HeurRFC")

# Exact-engine options reproducing each named configuration; the engine's
# config builder derives exactly these algorithm names from the options.
CONFIGURATION_OPTIONS: dict[str, dict] = {
    "MaxRFC": {"bound_stack": None, "use_heuristic": False},
    "MaxRFC+ub": {"use_heuristic": False},
    "MaxRFC+ub+HeurRFC": {},
}


def _build_query(
    configuration: str, stack_name: str, k: int, delta: int, time_limit: float | None
) -> FairCliqueQuery:
    try:
        options = dict(CONFIGURATION_OPTIONS[configuration])
    except KeyError:
        raise KeyError(f"unknown configuration {configuration!r}") from None
    if configuration != "MaxRFC":
        options["bound_stack"] = stack_name
    return FairCliqueQuery(
        model="relative", k=k, delta=delta, engine="exact",
        time_limit=time_limit, options=options,
    )


def run_search_experiment(
    datasets: Sequence[str] | None = None,
    scale: float = 1.0,
    vary: str = "k",
    configurations: Sequence[str] = CONFIGURATIONS,
    stack_overrides: dict[str, str] | None = None,
    time_limit: float | None = 120.0,
) -> list[dict]:
    """Run the Fig. 6 / Fig. 7 comparison; one row per (dataset, parameter, configuration)."""
    rows: list[dict] = []
    overrides = stack_overrides or {}
    for name in datasets or dataset_names():
        spec = get_dataset(name)
        graph = spec.load(scale)
        stack_name = overrides.get(spec.name, PAPER_BEST_STACK.get(spec.name, "ubAD"))
        if vary == "k":
            parameter_values = [(k, spec.default_delta) for k in spec.k_values]
        else:
            parameter_values = [(spec.default_k, delta) for delta in spec.delta_values]
        for k, delta in parameter_values:
            for configuration in configurations:
                query = _build_query(configuration, stack_name, k, delta, time_limit)
                # Fresh context per solve: the figure compares *standalone*
                # runtimes, so no reduction sharing across configurations.
                report = solve(graph, query)
                rows.append(
                    {
                        "dataset": spec.name,
                        "vary": vary,
                        "k": k,
                        "delta": delta,
                        "configuration": configuration,
                        "stack": stack_name if configuration != "MaxRFC" else "-",
                        "runtime_us": int(round(report.seconds * 1_000_000)),
                        "clique_size": report.size,
                        "branches": report.stats.branches_explored,
                        "optimal": report.optimal,
                    }
                )
    return rows


def format_search_report(rows: list[dict]) -> str:
    """Aligned text table of the Fig. 6 / Fig. 7 comparison."""
    return format_table(
        rows,
        columns=["dataset", "vary", "k", "delta", "configuration",
                 "runtime_us", "clique_size", "branches", "optimal"],
        title="Fig. 6 / Fig. 7 — MaxRFC vs MaxRFC+ub vs MaxRFC+ub+HeurRFC",
    )


def augmented_never_slower_by_much(rows: list[dict], tolerance: float = 2.0) -> bool:
    """Soft shape check: the augmented configurations are not drastically slower.

    ``tolerance`` allows small instances where the bound evaluation overhead
    exceeds its savings (also visible in the paper's near-identical runtimes
    for small settings).
    """
    by_key: dict[tuple, dict[str, int]] = {}
    for row in rows:
        key = (row["dataset"], row["k"], row["delta"])
        by_key.setdefault(key, {})[row["configuration"]] = row["runtime_us"]
    for values in by_key.values():
        base = values.get("MaxRFC")
        if base is None:
            continue
        for configuration in ("MaxRFC+ub", "MaxRFC+ub+HeurRFC"):
            augmented = values.get(configuration)
            if augmented is not None and augmented > tolerance * max(base, 1):
                return False
    return True
