"""Experiment drivers reproducing every table and figure of Section VI."""

from repro.experiments.bounds_experiment import (
    all_sizes_agree,
    best_stack_per_dataset,
    format_bounds_report,
    run_bounds_experiment,
)
from repro.experiments.case_study_experiment import (
    format_case_study_report,
    run_case_study_experiment,
)
from repro.experiments.heuristic_experiment import (
    format_heuristic_report,
    max_gap,
    run_heuristic_experiment,
)
from repro.experiments.reduction_experiment import (
    format_reduction_report,
    reduction_monotonicity_holds,
    run_reduction_experiment,
)
from repro.experiments.figures import (
    reduction_chart_from_rows,
    render_series_chart,
    runtime_chart_from_rows,
)
from repro.experiments.reporting import format_series, format_table, rows_to_csv, speedup
from repro.experiments.runner import (
    EXPERIMENTS,
    ExperimentOutcome,
    experiment_ids,
    run_all,
    run_experiment,
)
from repro.experiments.scalability_experiment import (
    format_scalability_report,
    run_scalability_experiment,
    runtime_grows_with_size,
)
from repro.experiments.search_experiment import (
    PAPER_BEST_STACK,
    augmented_never_slower_by_much,
    format_search_report,
    run_search_experiment,
)
from repro.experiments.timing import Timer, stopwatch, time_call

__all__ = [
    "all_sizes_agree",
    "best_stack_per_dataset",
    "format_bounds_report",
    "run_bounds_experiment",
    "format_case_study_report",
    "run_case_study_experiment",
    "format_heuristic_report",
    "max_gap",
    "run_heuristic_experiment",
    "format_reduction_report",
    "reduction_monotonicity_holds",
    "run_reduction_experiment",
    "reduction_chart_from_rows",
    "render_series_chart",
    "runtime_chart_from_rows",
    "format_series",
    "format_table",
    "rows_to_csv",
    "speedup",
    "EXPERIMENTS",
    "ExperimentOutcome",
    "experiment_ids",
    "run_all",
    "run_experiment",
    "format_scalability_report",
    "run_scalability_experiment",
    "runtime_grows_with_size",
    "PAPER_BEST_STACK",
    "augmented_never_slower_by_much",
    "format_search_report",
    "run_search_experiment",
    "Timer",
    "stopwatch",
    "time_call",
]
