"""Experiment: scalability on vertex / edge samples (Fig. 9).

The paper builds four subgraphs of each dataset by sampling 20%-80% of the
vertices (resp. edges) uniformly at random and reports the runtime of the
three exact-search configurations on each sample, with Flixster shown in the
figure.  The driver reproduces the same two sweeps on any stand-in
(Flixster by default) and reports runtimes per sample fraction.

Expected shape: the plain ``MaxRFC`` curve rises steeply with sample size
while ``MaxRFC+ub`` and ``MaxRFC+ub+HeurRFC`` rise gently.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.api import solve
from repro.datasets.registry import get_dataset
from repro.experiments.reporting import format_table
from repro.experiments.search_experiment import PAPER_BEST_STACK, _build_query
from repro.graph.generators import sample_edges, sample_vertices

DEFAULT_FRACTIONS: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)
CONFIGURATIONS: tuple[str, ...] = ("MaxRFC", "MaxRFC+ub", "MaxRFC+ub+HeurRFC")


def run_scalability_experiment(
    dataset: str = "Flixster",
    scale: float = 1.0,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    configurations: Sequence[str] = CONFIGURATIONS,
    time_limit: float | None = 120.0,
    seed: int = 0,
) -> list[dict]:
    """Run the Fig. 9 sweep; one row per (sample kind, fraction, configuration)."""
    spec = get_dataset(dataset)
    graph = spec.load(scale)
    stack_name = PAPER_BEST_STACK.get(spec.name, "ubAD")
    k, delta = spec.default_k, spec.default_delta
    rows: list[dict] = []
    for kind in ("vertices", "edges"):
        for fraction in fractions:
            if fraction >= 1.0:
                sample = graph
            elif kind == "vertices":
                sample = sample_vertices(graph, fraction, seed=seed)
            else:
                sample = sample_edges(graph, fraction, seed=seed)
            for configuration in configurations:
                query = _build_query(configuration, stack_name, k, delta, time_limit)
                report = solve(sample, query)
                rows.append(
                    {
                        "dataset": spec.name,
                        "sampled": kind,
                        "fraction": fraction,
                        "n": sample.num_vertices,
                        "m": sample.num_edges,
                        "configuration": configuration,
                        "runtime_us": int(round(report.seconds * 1_000_000)),
                        "clique_size": report.size,
                        "optimal": report.optimal,
                    }
                )
    return rows


def format_scalability_report(rows: list[dict]) -> str:
    """Aligned text table of the scalability sweep (Fig. 9)."""
    return format_table(
        rows,
        columns=["dataset", "sampled", "fraction", "n", "m",
                 "configuration", "runtime_us", "clique_size", "optimal"],
        title="Fig. 9 — scalability over vertex/edge samples",
    )


def runtime_grows_with_size(rows: list[dict], configuration: str = "MaxRFC") -> bool:
    """Soft shape check: larger samples do not get *dramatically cheaper* to solve.

    Random sampling occasionally removes the hard structure, so strict
    monotonicity is not expected; the check only flags a configuration whose
    full-graph runtime is lower than half its smallest-sample runtime.
    """
    by_kind: dict[str, list[tuple[float, int]]] = {}
    for row in rows:
        if row["configuration"] != configuration:
            continue
        by_kind.setdefault(row["sampled"], []).append((row["fraction"], row["runtime_us"]))
    for series in by_kind.values():
        series.sort()
        smallest = series[0][1]
        largest = series[-1][1]
        if largest < smallest / 2:
            return False
    return True
