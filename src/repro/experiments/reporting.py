"""Plain-text table and series formatting for experiment output.

The experiment drivers return structured rows (lists of dictionaries); the
helpers here turn them into aligned text tables comparable, line by line, with
the tables and figure series printed in the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    ``columns`` selects and orders the columns; by default the keys of the
    first row are used.  Values are stringified with ``str`` (floats keep
    their repr, so format them before calling if a precision matters).
    """
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    keys = list(columns) if columns else list(rows[0].keys())
    table = [[str(key) for key in keys]]
    for row in rows:
        table.append([str(row.get(key, "")) for key in keys])
    widths = [max(len(line[index]) for line in table) for index in range(len(keys))]
    rendered_lines = []
    if title:
        rendered_lines.append(title)
    header, *body = table
    rendered_lines.append("  ".join(cell.ljust(width) for cell, width in zip(header, widths)))
    rendered_lines.append("  ".join("-" * width for width in widths))
    for line in body:
        rendered_lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(rendered_lines)


def format_series(
    label: str,
    x_values: Iterable,
    y_values: Iterable,
    x_name: str = "x",
    y_name: str = "y",
) -> str:
    """Render one figure series (e.g. runtime vs. k) as a compact text block."""
    pairs = list(zip(x_values, y_values))
    lines = [f"{label} ({x_name} -> {y_name}):"]
    for x, y in pairs:
        lines.append(f"  {x_name}={x}: {y}")
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render rows as CSV text (no external dependencies, no quoting surprises)."""
    if not rows:
        return ""
    keys = list(columns) if columns else list(rows[0].keys())

    def sanitize(value) -> str:
        text = str(value)
        if "," in text or '"' in text or "\n" in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(keys)]
    for row in rows:
        lines.append(",".join(sanitize(row.get(key, "")) for key in keys))
    return "\n".join(lines)


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """Return how many times faster ``improved`` is than ``baseline`` (inf-safe)."""
    if improved_seconds <= 0:
        return float("inf")
    return baseline_seconds / improved_seconds
