"""Experiment: graph reduction comparison (Fig. 4 and Fig. 5).

For every dataset stand-in and every ``k`` in its paper sweep, run the three
reductions *cumulatively* in the paper's order —

``EnColorfulCore``  →  ``ColorfulSup``  →  ``EnColorfulSup``

— and record the number of vertices and edges remaining after each stage
(plus the original counts), which is exactly what Fig. 4 (generated-attribute
datasets) and Fig. 5 (Aminer, real attributes) plot.

Expected qualitative shape: every stage keeps at most what the previous stage
kept, remaining counts shrink as ``k`` grows, and the two support-based
reductions remove markedly more edges than the core-based one.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datasets.registry import dataset_names, get_dataset
from repro.experiments.reporting import format_table
from repro.reduction.pipeline import ReductionPipeline

STAGE_ORDER: tuple[str, ...] = ("EnColorfulCore", "ColorfulSup", "EnColorfulSup")


def run_reduction_experiment(
    datasets: Sequence[str] | None = None,
    scale: float = 1.0,
    k_values: Sequence[int] | None = None,
) -> list[dict]:
    """Run the Fig. 4 / Fig. 5 sweep and return one row per (dataset, k).

    Each row carries the original counts and, per stage, the surviving vertex
    and edge counts after that stage has been applied on top of the previous
    ones.
    """
    rows: list[dict] = []
    pipeline = ReductionPipeline(STAGE_ORDER)
    for name in datasets or dataset_names():
        spec = get_dataset(name)
        graph = spec.load(scale)
        for k in k_values or spec.k_values:
            result = pipeline.run(graph, k)
            row = {
                "dataset": spec.name,
                "k": k,
                "original_vertices": graph.num_vertices,
                "original_edges": graph.num_edges,
            }
            survivors_v = graph.num_vertices
            survivors_e = graph.num_edges
            for stage_name in STAGE_ORDER:
                try:
                    stage = result.stage(stage_name)
                    survivors_v = stage.vertices_after
                    survivors_e = stage.edges_after
                except KeyError:
                    # A stage is absent when an earlier stage already emptied
                    # the graph; the survivor counts simply carry forward (0).
                    pass
                row[f"{stage_name}_vertices"] = survivors_v
                row[f"{stage_name}_edges"] = survivors_e
            rows.append(row)
    return rows


def format_reduction_report(rows: list[dict]) -> str:
    """Aligned text table of the reduction sweep (one block per dataset)."""
    return format_table(
        rows,
        columns=[
            "dataset", "k",
            "original_vertices", "EnColorfulCore_vertices",
            "ColorfulSup_vertices", "EnColorfulSup_vertices",
            "original_edges", "EnColorfulCore_edges",
            "ColorfulSup_edges", "EnColorfulSup_edges",
        ],
        title="Fig. 4 / Fig. 5 — remaining vertices and edges after each reduction",
    )


def reduction_monotonicity_holds(rows: list[dict]) -> bool:
    """Check the expected shape: each stage keeps at most what the previous kept."""
    for row in rows:
        vertices = [
            row["original_vertices"],
            row["EnColorfulCore_vertices"],
            row["ColorfulSup_vertices"],
            row["EnColorfulSup_vertices"],
        ]
        edges = [
            row["original_edges"],
            row["EnColorfulCore_edges"],
            row["ColorfulSup_edges"],
            row["EnColorfulSup_edges"],
        ]
        if any(later > earlier for earlier, later in zip(vertices, vertices[1:])):
            return False
        if any(later > earlier for earlier, later in zip(edges, edges[1:])):
            return False
    return True
