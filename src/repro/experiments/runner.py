"""Top-level experiment orchestration.

``run_experiment`` resolves an experiment id (``"fig4"``, ``"table2"``,
``"fig6"``…) to its driver, runs it with sensible small-scale defaults, and
returns both the structured rows and the formatted report.  ``run_all`` runs
the complete battery; the CLI (``python -m repro reproduce <id>``) and the
EXPERIMENTS.md regeneration script are thin wrappers around these functions.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.api import query_grid, solve_many
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_table
from repro.experiments.bounds_experiment import format_bounds_report, run_bounds_experiment
from repro.experiments.case_study_experiment import (
    format_case_study_report,
    run_case_study_experiment,
)
from repro.experiments.heuristic_experiment import (
    format_heuristic_report,
    run_heuristic_experiment,
)
from repro.experiments.reduction_experiment import (
    format_reduction_report,
    run_reduction_experiment,
)
from repro.experiments.scalability_experiment import (
    format_scalability_report,
    run_scalability_experiment,
)
from repro.experiments.search_experiment import format_search_report, run_search_experiment

GENERATED = ("Themarker", "Google", "DBLP", "Flixster", "Pokec")


@dataclass
class ExperimentOutcome:
    """Rows plus a formatted report for one experiment run."""

    experiment: str
    rows: list[dict]
    report: str


def _fig4(scale: float) -> ExperimentOutcome:
    rows = run_reduction_experiment(datasets=GENERATED, scale=scale)
    return ExperimentOutcome("fig4", rows, format_reduction_report(rows))


def _fig5(scale: float) -> ExperimentOutcome:
    rows = run_reduction_experiment(datasets=("Aminer",), scale=scale)
    return ExperimentOutcome("fig5", rows, format_reduction_report(rows))


def _table2(scale: float) -> ExperimentOutcome:
    rows = run_bounds_experiment(scale=scale, vary="k")
    rows += run_bounds_experiment(scale=scale, vary="delta")
    return ExperimentOutcome("table2", rows, format_bounds_report(rows))


def _fig6(scale: float) -> ExperimentOutcome:
    rows = run_search_experiment(datasets=GENERATED, scale=scale, vary="k")
    rows += run_search_experiment(datasets=GENERATED, scale=scale, vary="delta")
    return ExperimentOutcome("fig6", rows, format_search_report(rows))


def _fig7(scale: float) -> ExperimentOutcome:
    rows = run_search_experiment(datasets=("Aminer",), scale=scale, vary="k")
    rows += run_search_experiment(datasets=("Aminer",), scale=scale, vary="delta")
    return ExperimentOutcome("fig7", rows, format_search_report(rows))


def _fig8(scale: float) -> ExperimentOutcome:
    rows = run_heuristic_experiment(scale=scale)
    return ExperimentOutcome("fig8", rows, format_heuristic_report(rows))


def _fig9(scale: float) -> ExperimentOutcome:
    rows = run_scalability_experiment(dataset="Flixster", scale=scale)
    return ExperimentOutcome("fig9", rows, format_scalability_report(rows))


def _case_studies(scale: float) -> ExperimentOutcome:
    rows = run_case_study_experiment()
    return ExperimentOutcome("case-studies", rows, format_case_study_report(rows))


def _model_grid(scale: float) -> ExperimentOutcome:
    """All four fairness models × a small k sweep through the unified batch API.

    One :func:`repro.api.solve_many` call per dataset answers the whole grid;
    queries with the same ``k`` share the memoized reduction run, which is the
    batch layer's raison d'être.
    """
    from repro.datasets.registry import get_dataset

    rows: list[dict] = []
    for name in ("DBLP", "Aminer"):
        spec = get_dataset(name)
        graph = spec.load(scale)
        ks = tuple(spec.k_values[:2])
        queries = query_grid(
            models=("weak", "relative", "strong", "multi_weak"),
            ks=ks,
            deltas=(spec.default_delta,),
            time_limit=60.0,
        )
        for query, report in zip(queries, solve_many(graph, queries)):
            rows.append(
                {
                    "dataset": spec.name,
                    "model": report.model,
                    "k": report.k,
                    "delta": "-" if report.delta is None else report.delta,
                    "size": report.size,
                    "gap": report.fairness_gap,
                    "runtime_us": int(round(report.seconds * 1_000_000)),
                    "optimal": report.optimal,
                }
            )
    report_text = format_table(
        rows,
        columns=["dataset", "model", "k", "delta", "size", "gap", "runtime_us", "optimal"],
        title="Model grid — every fairness model through the unified solve() API",
    )
    return ExperimentOutcome("model-grid", rows, report_text)


EXPERIMENTS: dict[str, Callable[[float], ExperimentOutcome]] = {
    "fig4": _fig4,
    "fig5": _fig5,
    "table2": _table2,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "case-studies": _case_studies,
    "model-grid": _model_grid,
}


def experiment_ids() -> tuple[str, ...]:
    """Identifiers of every reproducible table/figure."""
    return tuple(EXPERIMENTS)


def run_experiment(experiment: str, scale: float = 1.0) -> ExperimentOutcome:
    """Run one experiment by id and return its rows + formatted report."""
    try:
        driver = EXPERIMENTS[experiment]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return driver(scale)


def run_all(scale: float = 1.0, experiments: Sequence[str] | None = None) -> list[ExperimentOutcome]:
    """Run the full battery (or a subset) and return every outcome."""
    return [run_experiment(name, scale) for name in (experiments or experiment_ids())]
