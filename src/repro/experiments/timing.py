"""Small timing utilities shared by the experiment drivers."""

from __future__ import annotations

import time
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Timer:
    """Accumulating wall-clock timer with microsecond reporting.

    The paper reports runtimes in microseconds (µs); :attr:`microseconds`
    mirrors that unit so experiment tables can be compared side by side.
    """

    elapsed: float = 0.0
    _started: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._started = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and add the lap to the accumulated total."""
        if self._started is None:
            return self.elapsed
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return self.elapsed

    @property
    def microseconds(self) -> int:
        """Accumulated time in whole microseconds."""
        return int(round(self.elapsed * 1_000_000))

    @property
    def milliseconds(self) -> float:
        """Accumulated time in milliseconds."""
        return self.elapsed * 1_000.0


@contextmanager
def stopwatch():
    """Context manager yielding a :class:`Timer` running for the ``with`` body."""
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        timer.stop()


def time_call(function: Callable[..., Any], *args, **kwargs) -> tuple[Any, float]:
    """Call ``function`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - started
