"""Experiment: heuristic solution quality (Fig. 8).

Fig. 8 compares, for every dataset at its default parameters, the size of the
fair clique returned by the linear-time heuristic ``HeurRFC`` with the size of
the true maximum fair clique found by ``MaxRFC``.  The paper reports the gap
to be at most 6 vertices on every dataset (0 on DBLP); the driver reproduces
the same two bars per dataset and reports the gap explicitly.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bounds.stacks import get_stack
from repro.datasets.registry import dataset_names, get_dataset
from repro.experiments.reporting import format_table
from repro.heuristic.heur_rfc import HeurRFC
from repro.search.maxrfc import MaxRFC, MaxRFCConfig


def run_heuristic_experiment(
    datasets: Sequence[str] | None = None,
    scale: float = 1.0,
    time_limit: float | None = 120.0,
    restarts: int = 4,
) -> list[dict]:
    """Run the Fig. 8 comparison; one row per dataset."""
    rows: list[dict] = []
    for name in datasets or dataset_names():
        spec = get_dataset(name)
        graph = spec.load(scale)
        k, delta = spec.default_k, spec.default_delta
        heuristic = HeurRFC(restarts=restarts).solve(graph, k, delta)
        exact = MaxRFC(
            MaxRFCConfig(
                bound_stack=get_stack("ubAD+ubcd"),
                use_heuristic=True,
                time_limit=time_limit,
                algorithm_name="MaxRFC+ub+HeurRFC",
            )
        ).solve(graph, k, delta)
        rows.append(
            {
                "dataset": spec.name,
                "k": k,
                "delta": delta,
                "heur_rfc_size": heuristic.size,
                "mrfc_size": exact.size,
                "gap": exact.size - heuristic.size,
                "heur_seconds": round(heuristic.stats.total_seconds, 4),
                "exact_seconds": round(exact.stats.total_seconds, 4),
            }
        )
    return rows


def format_heuristic_report(rows: list[dict]) -> str:
    """Aligned text table of heuristic vs. exact sizes (Fig. 8)."""
    return format_table(
        rows,
        columns=["dataset", "k", "delta", "heur_rfc_size", "mrfc_size",
                 "gap", "heur_seconds", "exact_seconds"],
        title="Fig. 8 — fair clique sizes found by HeurRFC and MaxRFC",
    )


def max_gap(rows: list[dict]) -> int:
    """Largest (exact - heuristic) size gap over all datasets; the paper reports <= 6."""
    return max((row["gap"] for row in rows), default=0)
