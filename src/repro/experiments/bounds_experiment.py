"""Experiment: MaxRFC runtime under different upper-bound stacks (Table II).

The paper's Table II reports, for every dataset and every ``k`` and ``delta``
in the sweeps, the running time of MaxRFC equipped with each of the six bound
configurations (``ubAD`` plus one of nothing, ``ub_△``, ``ub_h``, ``ub_cd``,
``ub_ch``, ``ub_cp``).  This driver reproduces the same grid on the dataset
stand-ins, reporting microseconds to match the paper's unit, and additionally
records the clique size found (all configurations must agree — the bound only
affects speed, never the optimum).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bounds.stacks import STACK_CONFIGURATIONS, get_stack
from repro.datasets.registry import dataset_names, get_dataset
from repro.experiments.reporting import format_table
from repro.search.maxrfc import MaxRFC, MaxRFCConfig


def run_bounds_experiment(
    datasets: Sequence[str] | None = None,
    scale: float = 1.0,
    stack_names_to_run: Sequence[str] | None = None,
    vary: str = "k",
    time_limit: float | None = 60.0,
    use_heuristic: bool = True,
) -> list[dict]:
    """Run the Table II grid; one row per (dataset, parameter value, stack).

    ``vary`` selects which parameter sweeps ("k" with delta at its default, or
    "delta" with k at its default), matching the two halves of Table II.
    """
    rows: list[dict] = []
    stacks = list(stack_names_to_run or STACK_CONFIGURATIONS)
    for name in datasets or dataset_names():
        spec = get_dataset(name)
        graph = spec.load(scale)
        if vary == "k":
            parameter_values = [(k, spec.default_delta) for k in spec.k_values]
        else:
            parameter_values = [(spec.default_k, delta) for delta in spec.delta_values]
        for k, delta in parameter_values:
            for stack_name in stacks:
                config = MaxRFCConfig(
                    bound_stack=get_stack(stack_name),
                    use_heuristic=use_heuristic,
                    time_limit=time_limit,
                    algorithm_name=f"MaxRFC[{stack_name}]",
                )
                result = MaxRFC(config).solve(graph, k, delta)
                rows.append(
                    {
                        "dataset": spec.name,
                        "vary": vary,
                        "k": k,
                        "delta": delta,
                        "stack": stack_name,
                        "runtime_us": int(round(result.stats.total_seconds * 1_000_000)),
                        "clique_size": result.size,
                        "branches": result.stats.branches_explored,
                        "optimal": result.optimal,
                    }
                )
    return rows


def format_bounds_report(rows: list[dict]) -> str:
    """Aligned text table mirroring Table II (runtimes in microseconds)."""
    return format_table(
        rows,
        columns=["dataset", "vary", "k", "delta", "stack",
                 "runtime_us", "clique_size", "branches", "optimal"],
        title="Table II — MaxRFC runtime with different upper bounds",
    )


def best_stack_per_dataset(rows: list[dict]) -> dict[str, str]:
    """For each dataset, the stack with the lowest total runtime over its sweep.

    This mirrors how the paper picks the per-dataset bound used in the Fig. 6/7
    comparison (``ubAD + ubcp`` for Themarker/Google/Pokec, ``ubAD + ubcd``
    elsewhere).
    """
    totals: dict[tuple[str, str], float] = {}
    for row in rows:
        key = (row["dataset"], row["stack"])
        totals[key] = totals.get(key, 0.0) + row["runtime_us"]
    best: dict[str, str] = {}
    for (dataset, stack), total in sorted(totals.items()):
        if dataset not in best or total < totals[(dataset, best[dataset])]:
            best[dataset] = stack
    return best


def all_sizes_agree(rows: list[dict]) -> bool:
    """Sanity check: every stack finds the same optimum for a given (dataset, k, delta)."""
    sizes: dict[tuple, set[int]] = {}
    for row in rows:
        key = (row["dataset"], row["k"], row["delta"])
        sizes.setdefault(key, set()).add(row["clique_size"])
    return all(len(values) == 1 for values in sizes.values())
