"""Classic k-core decomposition, degeneracy, and graph h-index.

The plain (uncolored) k-core machinery serves three purposes in the paper:

* the degeneracy-based upper bound ``ub_△`` (Lemma 10) and the h-index-based
  upper bound ``ub_h`` (Lemma 11);
* the ``(|R*| - 1)``-core pruning step inside the heuristic framework
  ``HeurRFC`` (Algorithm 6, lines 3 and 8);
* the degeneracy ordering reused by coloring and baseline clique algorithms.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.attributed_graph import AttributedGraph, Vertex


def core_numbers(graph: AttributedGraph,
                 vertices: Iterable[Vertex] | None = None) -> dict[Vertex, int]:
    """Compute the core number of every vertex with bucket-queue peeling.

    The core number of ``v`` is the largest ``k`` such that ``v`` belongs to a
    subgraph in which every vertex has degree at least ``k``.  Runs in
    O(|V| + |E|) time on the induced subgraph of ``vertices``.
    """
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    degrees = {v: sum(1 for u in graph.neighbors(v) if u in scope) for v in scope}
    if not scope:
        return {}
    max_degree = max(degrees.values())
    buckets: list[set[Vertex]] = [set() for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        buckets[degree].add(vertex)
    cores: dict[Vertex, int] = {}
    remaining = set(scope)
    current = 0
    while remaining:
        while current <= max_degree and not buckets[current]:
            current += 1
        if current > max_degree:
            break
        vertex = buckets[current].pop()
        remaining.discard(vertex)
        cores[vertex] = current
        for neighbor in graph.neighbors(vertex):
            if neighbor in remaining:
                degree = degrees[neighbor]
                if degree > current:
                    buckets[degree].discard(neighbor)
                    degrees[neighbor] = degree - 1
                    buckets[degree - 1].add(neighbor)
    return cores


def degeneracy(graph: AttributedGraph, vertices: Iterable[Vertex] | None = None) -> int:
    """Return the degeneracy (maximum core number) of the graph or induced subgraph."""
    cores = core_numbers(graph, vertices)
    return max(cores.values(), default=0)


def degeneracy_ordering(graph: AttributedGraph,
                        vertices: Iterable[Vertex] | None = None) -> list[Vertex]:
    """Return vertices in the peeling (smallest-degree-first) removal order."""
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    degrees = {v: sum(1 for u in graph.neighbors(v) if u in scope) for v in scope}
    order: list[Vertex] = []
    if not scope:
        return order
    max_degree = max(degrees.values())
    buckets: list[set[Vertex]] = [set() for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        buckets[degree].add(vertex)
    remaining = set(scope)
    current = 0
    while remaining:
        while current <= max_degree and not buckets[current]:
            current += 1
        if current > max_degree:
            break
        vertex = min(buckets[current], key=str)
        buckets[current].discard(vertex)
        remaining.discard(vertex)
        order.append(vertex)
        for neighbor in graph.neighbors(vertex):
            if neighbor in remaining:
                degree = degrees[neighbor]
                if degree > 0:
                    buckets[degree].discard(neighbor)
                    degrees[neighbor] = degree - 1
                    buckets[degree - 1].add(neighbor)
                    if degree - 1 < current:
                        current = degree - 1
    return order


def k_core(graph: AttributedGraph, k: int,
           vertices: Iterable[Vertex] | None = None) -> set[Vertex]:
    """Return the vertex set of the k-core (possibly empty)."""
    cores = core_numbers(graph, vertices)
    return {v for v, core in cores.items() if core >= k}


def k_core_subgraph(graph: AttributedGraph, k: int) -> AttributedGraph:
    """Return the k-core as an induced :class:`AttributedGraph`."""
    return graph.subgraph(k_core(graph, k))


def graph_h_index(graph: AttributedGraph,
                  vertices: Iterable[Vertex] | None = None) -> int:
    """Return the h-index of the graph: the largest ``h`` with ``h`` vertices of degree >= ``h``.

    Degrees are taken inside the induced subgraph of ``vertices`` when given.
    """
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    degrees = sorted(
        (sum(1 for u in graph.neighbors(v) if u in scope) for v in scope),
        reverse=True,
    )
    h = 0
    for index, degree in enumerate(degrees, start=1):
        if degree >= index:
            h = index
        else:
            break
    return h


def h_index_of_values(values: Iterable[int]) -> int:
    """Return the h-index of an arbitrary sequence of non-negative integers."""
    ordered = sorted(values, reverse=True)
    h = 0
    for index, value in enumerate(ordered, start=1):
        if value >= index:
            h = index
        else:
            break
    return h
