"""Core decompositions: classic, colorful, and enhanced colorful."""

from repro.cores.colorful import (
    colorful_core_numbers,
    colorful_degeneracy,
    colorful_degrees,
    colorful_h_index,
    colorful_k_core,
    min_colorful_degrees,
)
from repro.cores.enhanced import (
    balanced_split_value,
    color_groups_for_vertex,
    enhanced_colorful_degree,
    enhanced_colorful_degrees,
    enhanced_colorful_k_core,
)
from repro.cores.kcore import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    graph_h_index,
    h_index_of_values,
    k_core,
    k_core_subgraph,
)

__all__ = [
    "colorful_core_numbers",
    "colorful_degeneracy",
    "colorful_degrees",
    "colorful_h_index",
    "colorful_k_core",
    "min_colorful_degrees",
    "balanced_split_value",
    "color_groups_for_vertex",
    "enhanced_colorful_degree",
    "enhanced_colorful_degrees",
    "enhanced_colorful_k_core",
    "core_numbers",
    "degeneracy",
    "degeneracy_ordering",
    "graph_h_index",
    "h_index_of_values",
    "k_core",
    "k_core_subgraph",
]
