"""Enhanced colorful degree and enhanced colorful k-core (Definitions 4-5).

The plain colorful degree counts colors *per attribute independently*, so the
same color can be counted once for attribute ``a`` and once for attribute
``b`` even though a fair clique can use it for at most one of them (clique
vertices all have distinct colors).  The *enhanced* variants fix this by
partitioning a vertex's neighbour colors into three groups —

* colors used only by attribute-``a`` neighbours  (``c_a`` of them),
* colors used only by attribute-``b`` neighbours  (``c_b``),
* colors used by both                              (``c_m``, the *mixed* group)

— and assigning each mixed color to exactly one attribute.  The enhanced
colorful degree ``ED(u)`` is the best achievable value of
``min(a-side colors, b-side colors)`` over all such assignments, i.e.

``ED(u) = min(c_a + c_m, c_b + c_m, floor((c_a + c_b + c_m) / 2))``.

Any relative fair clique with parameter ``k`` is contained in the enhanced
colorful ``(k-1)``-core (Lemma 2), which is the first stage of the paper's
reduction pipeline (``EnColorfulCore``).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.coloring.greedy import Coloring, greedy_coloring
from repro.graph.attributed_graph import AttributedGraph, Vertex
from repro.graph.validation import validate_binary_attributes


def color_groups_for_vertex(
    graph: AttributedGraph,
    coloring: Coloring,
    vertex: Vertex,
    scope: set[Vertex],
    attribute_a: str,
    attribute_b: str,
) -> tuple[set[int], set[int], set[int]]:
    """Partition the neighbour colors of ``vertex`` into (only-a, only-b, mixed) sets."""
    colors_a: set[int] = set()
    colors_b: set[int] = set()
    for neighbor in graph.neighbors(vertex):
        if neighbor in scope:
            if graph.attribute(neighbor) == attribute_a:
                colors_a.add(coloring[neighbor])
            else:
                colors_b.add(coloring[neighbor])
    mixed = colors_a & colors_b
    return colors_a - mixed, colors_b - mixed, mixed


def balanced_split_value(count_a: int, count_b: int, count_mixed: int) -> int:
    """Best achievable ``min(a-side, b-side)`` when mixed colors go to one side each.

    Equivalent to ``max over x in [0, count_mixed] of
    min(count_a + x, count_b + count_mixed - x)``.
    """
    total = count_a + count_b + count_mixed
    return min(count_a + count_mixed, count_b + count_mixed, total // 2)


def enhanced_colorful_degree(
    graph: AttributedGraph,
    coloring: Coloring,
    vertex: Vertex,
    scope: set[Vertex] | None = None,
) -> int:
    """Return ``ED(vertex)`` — the enhanced colorful degree (Definition 4)."""
    attribute_a, attribute_b = validate_binary_attributes(graph)
    if scope is None:
        scope = set(graph.vertices())
    only_a, only_b, mixed = color_groups_for_vertex(
        graph, coloring, vertex, scope, attribute_a, attribute_b
    )
    return balanced_split_value(len(only_a), len(only_b), len(mixed))


def enhanced_colorful_degrees(
    graph: AttributedGraph,
    coloring: Coloring | None = None,
    vertices: Iterable[Vertex] | None = None,
) -> dict[Vertex, int]:
    """Compute ``ED(u)`` for every vertex in scope."""
    attribute_a, attribute_b = validate_binary_attributes(graph)
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    if coloring is None:
        coloring = greedy_coloring(graph, scope)
    result: dict[Vertex, int] = {}
    for vertex in scope:
        only_a, only_b, mixed = color_groups_for_vertex(
            graph, coloring, vertex, scope, attribute_a, attribute_b
        )
        result[vertex] = balanced_split_value(len(only_a), len(only_b), len(mixed))
    return result


def enhanced_colorful_k_core(
    graph: AttributedGraph,
    k: int,
    coloring: Coloring | None = None,
    vertices: Iterable[Vertex] | None = None,
) -> set[Vertex]:
    """Return the vertex set of the enhanced colorful k-core (Definition 5).

    Peels vertices whose ``ED`` falls below ``k``.  Because ``ED`` depends on
    the full color-group structure of a vertex's neighbourhood, affected
    neighbours are recomputed from their (shrinking) neighbourhoods; the peeled
    set only ever shrinks, so the loop terminates after at most |V| removals.
    """
    attribute_a, attribute_b = validate_binary_attributes(graph)
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    if coloring is None:
        coloring = greedy_coloring(graph, scope)

    remaining = set(scope)

    def degree_of(vertex: Vertex) -> int:
        only_a, only_b, mixed = color_groups_for_vertex(
            graph, coloring, vertex, remaining, attribute_a, attribute_b
        )
        return balanced_split_value(len(only_a), len(only_b), len(mixed))

    queue = [vertex for vertex in remaining if degree_of(vertex) < k]
    pending = set(queue)
    while queue:
        vertex = queue.pop()
        pending.discard(vertex)
        if vertex not in remaining:
            continue
        if degree_of(vertex) >= k:
            continue
        remaining.discard(vertex)
        for neighbor in graph.neighbors(vertex):
            if neighbor in remaining and neighbor not in pending:
                if degree_of(neighbor) < k:
                    queue.append(neighbor)
                    pending.add(neighbor)
    return remaining
