"""Colorful degrees, colorful k-core, colorful core numbers, colorful h-index.

These are the color-and-attribute-aware analogues of degree, k-core,
degeneracy, and h-index introduced by the fair-clique line of work and reused
throughout the paper:

* **colorful degree** ``D_a(u, G)`` (Definition 2) — the number of *distinct
  colors* among ``u``'s neighbours whose attribute is ``a``;
* **colorful k-core** (Definition 3) — maximal subgraph in which every vertex
  has ``min_x D_x >= k`` over every attribute value ``x``; any relative fair
  clique with parameter ``k`` lives inside the colorful ``(k-1)``-core
  (Lemma 1);
* **colorful core number / colorful degeneracy** (Definitions 8-9) — backbone
  of the ``ub_cd`` upper bound (Lemma 12);
* **colorful h-index** (Definition 10) — backbone of ``ub_ch`` (Lemma 13).

The paper defines these on binary attribute domains; every function here
takes the minimum over *all* attribute values present in the graph, which is
the same quantity on binary graphs and the natural generalisation the
multi-attribute weak fairness model (:mod:`repro.models`) relies on.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.coloring.greedy import Coloring, greedy_coloring
from repro.cores.kcore import h_index_of_values
from repro.graph.attributed_graph import AttributedGraph, Vertex


def colorful_degrees(
    graph: AttributedGraph,
    coloring: Coloring,
    vertices: Iterable[Vertex] | None = None,
) -> dict[Vertex, dict[str, int]]:
    """Compute ``D_x(u)`` for every vertex in scope and attribute value ``x``.

    Returns ``{u: {attribute: distinct-color count}}``.  Attributes with no
    neighbouring vertex are reported as 0 so callers can index unconditionally.
    """
    values = graph.attribute_values()
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    result: dict[Vertex, dict[str, int]] = {}
    for vertex in scope:
        seen: dict[str, set[int]] = {value: set() for value in values}
        for neighbor in graph.neighbors(vertex):
            if neighbor in scope:
                seen[graph.attribute(neighbor)].add(coloring[neighbor])
        result[vertex] = {value: len(colors) for value, colors in seen.items()}
    return result


def min_colorful_degrees(
    graph: AttributedGraph,
    coloring: Coloring,
    vertices: Iterable[Vertex] | None = None,
) -> dict[Vertex, int]:
    """Compute ``D_min(u) = min_x D_x(u)`` for every vertex in scope."""
    degrees = colorful_degrees(graph, coloring, vertices)
    return {vertex: min(per_attribute.values()) for vertex, per_attribute in degrees.items()}


def colorful_k_core(
    graph: AttributedGraph,
    k: int,
    coloring: Coloring | None = None,
    vertices: Iterable[Vertex] | None = None,
) -> set[Vertex]:
    """Return the vertex set of the colorful k-core (Definition 3).

    Peels vertices whose ``D_min`` falls below ``k``, recomputing colorful
    degrees of the affected neighbours incrementally.
    """
    values = graph.attribute_values()
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    if not values:
        return set()
    if coloring is None:
        coloring = greedy_coloring(graph, scope)
    # Per-vertex, per-attribute multiset of neighbour colors (color -> count),
    # so removals can decrement without rescanning neighbourhoods.
    color_count: dict[Vertex, dict[str, dict[int, int]]] = {}
    for vertex in scope:
        per_attribute: dict[str, dict[int, int]] = {value: {} for value in values}
        for neighbor in graph.neighbors(vertex):
            if neighbor in scope:
                bucket = per_attribute[graph.attribute(neighbor)]
                color = coloring[neighbor]
                bucket[color] = bucket.get(color, 0) + 1
        color_count[vertex] = per_attribute

    def min_degree(vertex: Vertex) -> int:
        return min(len(bucket) for bucket in color_count[vertex].values())

    queue = [vertex for vertex in scope if min_degree(vertex) < k]
    removed: set[Vertex] = set()
    while queue:
        vertex = queue.pop()
        if vertex in removed:
            continue
        removed.add(vertex)
        vertex_attribute = graph.attribute(vertex)
        vertex_color = coloring[vertex]
        for neighbor in graph.neighbors(vertex):
            if neighbor in scope and neighbor not in removed:
                bucket = color_count[neighbor][vertex_attribute]
                count = bucket.get(vertex_color, 0)
                if count <= 1:
                    bucket.pop(vertex_color, None)
                    if min_degree(neighbor) < k:
                        queue.append(neighbor)
                else:
                    bucket[vertex_color] = count - 1
    return scope - removed


def colorful_core_numbers(
    graph: AttributedGraph,
    coloring: Coloring | None = None,
    vertices: Iterable[Vertex] | None = None,
) -> dict[Vertex, int]:
    """Compute ``ccore(v)`` — the largest k whose colorful k-core contains v (Definition 8).

    Uses the standard generalized-core peeling: repeatedly remove a vertex of
    minimum current ``D_min``; its core number is the running maximum of the
    minimum degrees seen so far.
    """
    values = graph.attribute_values()
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    if not values:
        return {}
    if coloring is None:
        coloring = greedy_coloring(graph, scope)
    color_count: dict[Vertex, dict[str, dict[int, int]]] = {}
    for vertex in scope:
        per_attribute: dict[str, dict[int, int]] = {value: {} for value in values}
        for neighbor in graph.neighbors(vertex):
            if neighbor in scope:
                bucket = per_attribute[graph.attribute(neighbor)]
                color = coloring[neighbor]
                bucket[color] = bucket.get(color, 0) + 1
        color_count[vertex] = per_attribute

    def min_degree(vertex: Vertex) -> int:
        return min(len(bucket) for bucket in color_count[vertex].values())

    remaining = set(scope)
    degrees = {vertex: min_degree(vertex) for vertex in scope}
    core: dict[Vertex, int] = {}
    max_degree = max(degrees.values(), default=0)
    buckets: list[set[Vertex]] = [set() for _ in range(max_degree + 2)]
    for vertex, degree in degrees.items():
        buckets[degree].add(vertex)
    current_level = 0
    current = 0
    while remaining:
        while current <= max_degree and not buckets[current]:
            current += 1
        if current > max_degree:
            break
        vertex = buckets[current].pop()
        if vertex not in remaining:
            continue
        remaining.discard(vertex)
        current_level = max(current_level, degrees[vertex])
        core[vertex] = current_level
        vertex_attribute = graph.attribute(vertex)
        vertex_color = coloring[vertex]
        for neighbor in graph.neighbors(vertex):
            if neighbor in remaining:
                bucket = color_count[neighbor][vertex_attribute]
                count = bucket.get(vertex_color, 0)
                if count <= 1:
                    bucket.pop(vertex_color, None)
                    new_degree = min_degree(neighbor)
                    if new_degree != degrees[neighbor]:
                        buckets[degrees[neighbor]].discard(neighbor)
                        degrees[neighbor] = new_degree
                        buckets[new_degree].add(neighbor)
                        if new_degree < current:
                            current = new_degree
                elif count > 1:
                    bucket[vertex_color] = count - 1
    return core


def colorful_degeneracy(
    graph: AttributedGraph,
    coloring: Coloring | None = None,
    vertices: Iterable[Vertex] | None = None,
) -> int:
    """Return the colorful degeneracy ``△(G) = max_v ccore(v)`` (Definition 9)."""
    cores = colorful_core_numbers(graph, coloring, vertices)
    return max(cores.values(), default=0)


def colorful_h_index(
    graph: AttributedGraph,
    coloring: Coloring | None = None,
    vertices: Iterable[Vertex] | None = None,
) -> int:
    """Return the colorful h-index of the graph (Definition 10).

    The maximum ``h`` such that at least ``h`` vertices have
    ``D_min(v, G) >= h``.
    """
    scope = set(graph.vertices()) if vertices is None else set(vertices)
    if coloring is None:
        coloring = greedy_coloring(graph, scope)
    minima = min_colorful_degrees(graph, coloring, scope)
    return h_index_of_values(minima.values())
