"""Exact maximum relative fair clique search (MaxRFC) and supporting utilities."""

from repro.search.maxrfc import (
    MaxRFC,
    MaxRFCConfig,
    assert_valid_result,
    build_search_config,
    find_maximum_fair_clique,
    maximum_fair_clique_size,
)
from repro.search.ordering import (
    OrderingStrategy,
    colorful_core_ordering,
    compute_ordering,
)
from repro.search.result import SearchResult
from repro.search.statistics import SearchStats
from repro.search.verification import (
    best_fair_subset,
    best_fair_subset_size,
    fairness_satisfied,
    is_maximal_fair_clique,
    is_relative_fair_clique,
)

__all__ = [
    "MaxRFC",
    "MaxRFCConfig",
    "assert_valid_result",
    "build_search_config",
    "find_maximum_fair_clique",
    "maximum_fair_clique_size",
    "OrderingStrategy",
    "colorful_core_ordering",
    "compute_ordering",
    "SearchResult",
    "SearchStats",
    "best_fair_subset",
    "best_fair_subset_size",
    "fairness_satisfied",
    "is_maximal_fair_clique",
    "is_relative_fair_clique",
]
