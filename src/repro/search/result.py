"""Result objects returned by the exact and heuristic searches."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.attributed_graph import AttributedGraph
from repro.search.statistics import SearchStats


@dataclass
class SearchResult:
    """Outcome of a maximum-fair-clique search.

    Attributes
    ----------
    clique:
        The best relative fair clique found (empty when none exists).
    k, delta:
        The fairness parameters the search ran with.
    stats:
        Counters and timings collected during the run.
    algorithm:
        Human-readable name of the configuration (``"MaxRFC"``,
        ``"MaxRFC+ub"``, ``"HeurRFC"``…), used by experiment reports.
    optimal:
        True when the result is provably optimal (exact search that finished
        within its limits), False for heuristic or truncated runs.
    """

    clique: frozenset
    k: int
    delta: int
    stats: SearchStats = field(default_factory=SearchStats)
    algorithm: str = "MaxRFC"
    optimal: bool = True

    @property
    def size(self) -> int:
        """Number of vertices in the returned clique (0 when none was found)."""
        return len(self.clique)

    @property
    def found(self) -> bool:
        """True if a relative fair clique satisfying the constraints was found."""
        return bool(self.clique)

    def attribute_balance(self, graph: AttributedGraph) -> dict[str, int]:
        """Histogram of attribute values inside the returned clique."""
        return graph.attribute_histogram(self.clique) if self.clique else {}

    def summary(self) -> str:
        """One-line report used by the CLI and the experiment harness."""
        status = "optimal" if self.optimal else "heuristic/truncated"
        return (
            f"{self.algorithm}: size={self.size} (k={self.k}, delta={self.delta}, "
            f"{status}, {self.stats.total_seconds:.3f}s, "
            f"{self.stats.branches_explored} branches)"
        )
