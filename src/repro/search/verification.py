"""Verification predicates for (relative) fair cliques.

Used by tests as ground-truth checks, by the search to validate candidate
solutions, and by the baselines to score maximal cliques.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.attributed_graph import AttributedGraph, Vertex
from repro.graph.validation import validate_parameters


def fairness_satisfied(
    graph: AttributedGraph,
    vertices: Iterable[Vertex],
    k: int,
    delta: int,
) -> bool:
    """Check condition (i) of Definition 1 on an arbitrary vertex set.

    Both attributes must appear at least ``k`` times and the counts may differ
    by at most ``delta``.
    """
    validate_parameters(k, delta)
    attribute_a, attribute_b = graph.attribute_pair()
    count_a = 0
    count_b = 0
    for vertex in vertices:
        if graph.attribute(vertex) == attribute_a:
            count_a += 1
        else:
            count_b += 1
    return count_a >= k and count_b >= k and abs(count_a - count_b) <= delta


def is_relative_fair_clique(
    graph: AttributedGraph,
    vertices: Iterable[Vertex],
    k: int,
    delta: int,
) -> bool:
    """Return True if ``vertices`` induce a clique satisfying the fairness condition.

    Note this checks conditions (i) of Definition 1 plus the clique property;
    maximality (condition ii) is checked separately by
    :func:`is_maximal_fair_clique` because the *maximum* fair clique is
    automatically maximal.
    """
    members = list(dict.fromkeys(vertices))
    return graph.is_clique(members) and fairness_satisfied(graph, members, k, delta)


def is_maximal_fair_clique(
    graph: AttributedGraph,
    vertices: Iterable[Vertex],
    k: int,
    delta: int,
) -> bool:
    """Return True if ``vertices`` form a fair clique with no fair-clique superset.

    A superset clique violates maximality only if it *also* satisfies the
    fairness condition (Definition 1, condition ii).
    """
    members = set(vertices)
    if not is_relative_fair_clique(graph, members, k, delta):
        return False
    # Candidate extensions must be adjacent to every member.
    common: set[Vertex] | None = None
    for vertex in members:
        neighborhood = {u for u in graph.neighbors(vertex) if u not in members}
        common = neighborhood if common is None else (common & neighborhood)
        if not common:
            break
    return not any(
        fairness_satisfied(graph, members | {extra}, k, delta) for extra in (common or ())
    )


def best_fair_subset_size(count_a: int, count_b: int, k: int, delta: int) -> int:
    """Largest fair vertex-count achievable from a clique with the given attribute counts.

    Any subset of a clique is a clique, so from a clique with ``count_a``
    attribute-``a`` members and ``count_b`` attribute-``b`` members one can
    keep ``s_a <= count_a`` and ``s_b <= count_b`` vertices.  The best total
    subject to ``s_a, s_b >= k`` and ``|s_a - s_b| <= delta`` is returned,
    or 0 when no fair subset exists.
    """
    validate_parameters(k, delta)
    if count_a < k or count_b < k:
        return 0
    keep_a = min(count_a, count_b + delta)
    keep_b = min(count_b, count_a + delta)
    return keep_a + keep_b


def best_fair_subset(
    graph: AttributedGraph,
    clique: Iterable[Vertex],
    k: int,
    delta: int,
) -> frozenset:
    """Return an actual maximum fair subset of ``clique`` (empty frozenset if none).

    The subset keeps every vertex of the minority attribute and trims the
    majority attribute down to ``minority + delta`` vertices, which realises
    the size computed by :func:`best_fair_subset_size`.
    """
    attribute_a, attribute_b = graph.attribute_pair()
    members = list(clique)
    members_a = [v for v in members if graph.attribute(v) == attribute_a]
    members_b = [v for v in members if graph.attribute(v) == attribute_b]
    size = best_fair_subset_size(len(members_a), len(members_b), k, delta)
    if size == 0:
        return frozenset()
    keep_a = min(len(members_a), len(members_b) + delta)
    keep_b = min(len(members_b), len(members_a) + delta)
    members_a.sort(key=str)
    members_b.sort(key=str)
    return frozenset(members_a[:keep_a] + members_b[:keep_b])
