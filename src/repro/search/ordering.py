"""Vertex orderings for the branch-and-bound search.

``MaxRFC`` (Algorithm 2, line 9) orders the vertices of each connected
component with a *colorful-core based ordering* (``CalColorOD``): vertices are
ranked by their colorful core number, which places structurally weak vertices
first so that branches rooted at them stay small and the bulk of the work is
concentrated where the incumbent is already large.  Degree and degeneracy
orderings are provided as alternatives for ablation.
"""

from __future__ import annotations

from collections.abc import Iterable
from enum import Enum

from repro.coloring.greedy import Coloring, greedy_coloring
from repro.cores.colorful import colorful_core_numbers
from repro.cores.kcore import core_numbers, degeneracy_ordering
from repro.graph.attributed_graph import AttributedGraph, Vertex

Rank = dict[Vertex, int]


class OrderingStrategy(Enum):
    """Available vertex-ordering strategies for the search."""

    COLORFUL_CORE = "colorful-core"   # the paper's CalColorOD
    CORE = "core"                     # classic core numbers
    DEGREE = "degree"                 # non-decreasing degree
    DEGENERACY = "degeneracy"         # peeling order
    NATURAL = "natural"               # by vertex id


def _rank_from_sequence(sequence: list[Vertex]) -> Rank:
    return {vertex: index for index, vertex in enumerate(sequence)}


def colorful_core_ordering(
    graph: AttributedGraph,
    vertices: Iterable[Vertex],
    coloring: Coloring | None = None,
) -> Rank:
    """CalColorOD: rank vertices by ascending colorful core number.

    Ties are broken by ascending degree and then by vertex id, which keeps the
    ordering deterministic across runs.
    """
    scope = set(vertices)
    if coloring is None:
        coloring = greedy_coloring(graph, scope)
    cores = colorful_core_numbers(graph, coloring, scope)
    ordered = sorted(scope, key=lambda v: (cores.get(v, 0), graph.degree(v), str(v)))
    return _rank_from_sequence(ordered)


def core_ordering(graph: AttributedGraph, vertices: Iterable[Vertex]) -> Rank:
    """Rank vertices by ascending classic core number (ties by degree, id)."""
    scope = set(vertices)
    cores = core_numbers(graph, scope)
    ordered = sorted(scope, key=lambda v: (cores.get(v, 0), graph.degree(v), str(v)))
    return _rank_from_sequence(ordered)


def degree_rank_ordering(graph: AttributedGraph, vertices: Iterable[Vertex]) -> Rank:
    """Rank vertices by ascending degree (ties by id)."""
    ordered = sorted(set(vertices), key=lambda v: (graph.degree(v), str(v)))
    return _rank_from_sequence(ordered)


def degeneracy_rank_ordering(graph: AttributedGraph, vertices: Iterable[Vertex]) -> Rank:
    """Rank vertices by the peeling (degeneracy) order."""
    return _rank_from_sequence(degeneracy_ordering(graph, set(vertices)))


def natural_ordering(vertices: Iterable[Vertex]) -> Rank:
    """Rank vertices by their id only (baseline ordering)."""
    return _rank_from_sequence(sorted(set(vertices), key=str))


def compute_ordering(
    graph: AttributedGraph,
    vertices: Iterable[Vertex],
    strategy: OrderingStrategy = OrderingStrategy.COLORFUL_CORE,
    coloring: Coloring | None = None,
) -> Rank:
    """Dispatch to the requested ordering strategy and return a rank map."""
    if strategy is OrderingStrategy.COLORFUL_CORE:
        return colorful_core_ordering(graph, vertices, coloring)
    if strategy is OrderingStrategy.CORE:
        return core_ordering(graph, vertices)
    if strategy is OrderingStrategy.DEGREE:
        return degree_rank_ordering(graph, vertices)
    if strategy is OrderingStrategy.DEGENERACY:
        return degeneracy_rank_ordering(graph, vertices)
    return natural_ordering(vertices)
