"""MaxRFC — the exact maximum fair clique search (Algorithms 2-3).

The solver follows the paper's architecture:

1. **Reduce** the graph with the staged pipeline
   ``EnColorfulCore → ColorfulSup → EnColorfulSup`` (Algorithm 2, lines 1-3).
2. Optionally **seed the incumbent** with the model's linear-time heuristic
   (``HeurRFC``, Section V, for the binary models) so the very first branches
   already prune hard.
3. For every connected component of the reduced graph, compute the
   colorful-core vertex ordering ``CalColorOD`` and run a **branch-and-bound**
   enumeration of cliques in increasing-order fashion, pruning with
   (a) size / incumbent arguments, (b) per-attribute feasibility,
   (c) the fairness-gap argument, and (d) a configurable stack of the
   Section IV upper bounds.

The fairness condition itself is pluggable: :meth:`MaxRFC.solve_model` takes
any :class:`~repro.models.base.FairnessModel` (relative, weak, strong, or the
multi-attribute weak generalisation) and both the dict and the kernel
branch-and-bound consume only the model's quota/gap data — neither path
branches on model names.  :meth:`MaxRFC.solve` remains the historic
relative-model entry point.

Implementation note: Algorithm 3 in the paper interleaves a strict
attribute-alternation rule with the vertex-ordering filter; taken literally
the two interact so that cliques whose order-sorted attribute pattern does not
alternate would never be assembled.  This implementation keeps the ordering
filter (each clique is generated exactly once, by adding vertices in
increasing rank) and keeps fairness as *pruning* rather than as a hard
branching restriction, which preserves exactness; the attribute-driven
selection survives as a candidate-ordering heuristic.  The exact search is
validated against an independent Bron–Kerbosch-based oracle in the test suite.
"""

from __future__ import annotations

import sys
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from itertools import islice

from repro.bounds.base import BoundStack
from repro.cores.kcore import degeneracy
from repro.exceptions import SearchError
from repro.graph.attributed_graph import AttributedGraph, Vertex
from repro.graph.components import connected_components
from repro.graph.validation import validate_parameters
from repro.models.base import ActiveModel, FairnessModel, RelativeFairness
from repro.reduction.pipeline import DEFAULT_STAGES, PipelineResult, ReductionPipeline
from repro.resilience.deadline import Deadline
from repro.search.ordering import OrderingStrategy, compute_ordering
from repro.search.result import SearchResult
from repro.search.statistics import SearchStats
from repro.search.verification import fairness_satisfied


@dataclass
class MaxRFCConfig:
    """Tunable knobs of the exact search.

    Attributes
    ----------
    bound_stack:
        Stack of upper bounds used for branch pruning; ``None`` disables
        bound-based pruning (the plain ``MaxRFC`` baseline of Figs. 6-7).
        The fairness model may substitute a model-sound stack (the
        multi-attribute model keeps only the attribute-free bounds).
    use_reduction:
        Run the reduction pipeline before searching (Algorithm 2, lines 1-3).
    reduction_stages:
        Stage names for the pipeline (defaults to the paper's three stages).
        The fairness model may substitute model-sound stages.
    use_heuristic:
        Seed the incumbent with the model's heuristic before branching.
    bound_depth:
        Apply the bound stack to branches at depth strictly less than this
        value.  ``2`` reproduces the paper's "when selecting vertices to be
        added to R for the first time" (the bound is evaluated once per
        first-vertex branch); larger values trade bound evaluations for extra
        pruning, ``0`` disables bound evaluation entirely.
    ordering:
        Vertex-ordering strategy (CalColorOD by default).
    use_kernel:
        Branch over the compiled bitset/CSR kernel (:mod:`repro.kernel`)
        instead of the dict adjacency.  Result-identical to the dict path —
        same clique, same statistics counters — but candidate narrowing and
        fairness accounting collapse to integer bit arithmetic.  Disable
        only to measure the pre-kernel baseline.
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited).  When exceeded the
        search stops and the result is flagged non-optimal.
    branch_limit:
        Optional cap on explored branches, useful in benchmarks.
    """

    bound_stack: BoundStack | None = None
    use_reduction: bool = True
    reduction_stages: Sequence[str] = DEFAULT_STAGES
    use_heuristic: bool = False
    bound_depth: int = 2
    ordering: OrderingStrategy = OrderingStrategy.COLORFUL_CORE
    use_kernel: bool = True
    time_limit: float | None = None
    branch_limit: int | None = None
    algorithm_name: str = field(default="MaxRFC")


class _TimeBudgetExceeded(Exception):
    """Internal signal: stop the recursion, keep the incumbent."""


class MaxRFC:
    """Exact maximum fair clique solver over a pluggable fairness model."""

    def __init__(self, config: MaxRFCConfig | None = None) -> None:
        self.config = config or MaxRFCConfig()
        # Mirrors the best clique recorded during an in-flight search so a
        # time/branch budget abort can still return it (see solve()).
        self._incumbent: frozenset = frozenset()
        #: Optional ``(size, clique | None) -> None`` callback fired whenever
        #: the incumbent improves (heuristic seed included).  This is the tap
        #: behind ``session.stream()``; the parallel executor overrides how
        #: it is fed (worker incumbents arrive as sizes via the shared
        #: channel, without the clique).  Set it on the solver instance —
        #: it is deliberately not part of the (picklable) config.
        self.on_improve = None
        #: Optional ``threading.Event`` checked alongside the deadline (at
        #: the same 64-branch granularity): setting it aborts the search
        #: exactly like a budget expiry, keeping the incumbent.  This is how
        #: an abandoned streaming consumer stops its background solve.
        self.stop_event = None
        #: Optional warm-start incumbent: a clique the *caller* guarantees is
        #: a valid fair clique of the graph being solved (a session verifies
        #: its remembered optimum against the mutated graph before setting
        #: this).  Merged with the heuristic seed in :meth:`solve_model` —
        #: the search starts from the larger of the two, so it only has to
        #: beat (or re-prove) the previous answer.  Instance attribute, like
        #: the hooks: deliberately not part of the picklable config.
        self.initial_incumbent: frozenset | None = None

    def _notify_improve(self, size: int, clique: frozenset | None) -> None:
        if self.on_improve is not None:
            self.on_improve(size, clique)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(
        self,
        graph: AttributedGraph,
        k: int,
        delta: int,
        reduction: "PipelineResult | None" = None,
    ) -> SearchResult:
        """Find a maximum relative fair clique of ``graph`` for ``(k, delta)``.

        Thin wrapper over :meth:`solve_model` with the relative model; kept
        as the historic entry point (the weak/strong variants reach it with
        their mapped delta values).
        """
        validate_parameters(k, delta)
        return self.solve_model(graph, RelativeFairness(k, delta), reduction)

    def solve_model(
        self,
        graph: AttributedGraph,
        model: FairnessModel,
        reduction: "PipelineResult | None" = None,
        deadline: Deadline | None = None,
    ) -> SearchResult:
        """Find a maximum fair clique of ``graph`` under ``model``.

        ``reduction`` optionally supplies a precomputed reduction-pipeline
        result for ``(graph, model.k, model stages)`` (used by the batch API
        to share one pipeline run across queries); it is consulted only when
        the configuration has ``use_reduction`` enabled, and its cost is
        *not* added to this run's ``reduction_seconds`` — the caller owning
        the shared artifact decides how to account for it.

        ``deadline`` optionally imposes an externally-owned
        :class:`~repro.resilience.deadline.Deadline` (the service passes the
        request's, clamped by its quota tier).  It combines with
        ``config.time_limit`` by taking whichever expires first, and the
        resulting single object is what every layer below — component loop,
        shard payloads, retry decisions — consults.
        """
        config = self.config
        stats = SearchStats()
        best: frozenset = frozenset()
        deadline = Deadline.tightest(deadline, Deadline.start(config.time_limit))
        algorithm = model.algorithm_name(config.algorithm_name)

        if not model.admits(graph):
            # The model cannot be satisfied on this attribute domain (a
            # binary model on a non-binary graph): the answer is the empty
            # clique, not an error.
            return SearchResult(
                frozenset(), model.k, model.bound_delta_value(), stats,
                algorithm, True,
            )
        domain = model.domain_of(graph)
        if not domain:
            return SearchResult(
                frozenset(), model.k, model.bound_delta_value(), stats,
                algorithm, True,
            )

        working = graph
        if config.use_reduction:
            if reduction is None:
                started = time.monotonic()
                pipeline = ReductionPipeline(
                    model.reduction_stages(config.reduction_stages),
                    use_kernel=config.use_kernel,
                )
                reduction = pipeline.run(graph, model.k)
                stats.reduction_seconds = time.monotonic() - started
            stats.extra["reduction"] = [stage.summary() for stage in reduction.stages]
            working = reduction.graph

        if config.use_heuristic and working.num_vertices > 0:
            started = time.monotonic()
            best = model.heuristic_seed(working)
            stats.heuristic_seconds = time.monotonic() - started
            stats.extra["heuristic_size"] = len(best)
            if best:
                self._notify_improve(len(best), best)

        warm = self.initial_incumbent
        if warm and len(warm) > len(best):
            # Soundness is the caller's contract (see __init__): the clique
            # is fair on ``graph``, so it is a valid lower bound and the
            # search stays exact.
            best = frozenset(warm)
            stats.extra["warm_start_size"] = len(best)
            self._notify_improve(len(best), best)

        active = model.bind(domain, config.bound_stack)
        started = time.monotonic()
        timed_out = False
        # Any clique recorded mid-search is mirrored here so a time/branch
        # budget abort keeps the best incumbent found, not just the seed.
        self._incumbent = best
        try:
            best = self._search_components(working, active, best, stats, deadline)
        except _TimeBudgetExceeded:
            timed_out = True
            best = self._incumbent
        stats.search_seconds = time.monotonic() - started
        stats.timed_out = timed_out

        return SearchResult(
            clique=best,
            k=model.k,
            delta=active.bound_delta,
            stats=stats,
            algorithm=algorithm,
            optimal=not timed_out,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _search_components(
        self,
        graph: AttributedGraph,
        model: ActiveModel,
        best: frozenset,
        stats: SearchStats,
        deadline: Deadline,
    ) -> frozenset:
        minimum_size = model.min_size
        # Recursion can go as deep as the largest clique; give it headroom.
        sys.setrecursionlimit(max(sys.getrecursionlimit(), graph.num_vertices + 1000))
        use_kernel = self.config.use_kernel
        kernel = graph.compile() if (use_kernel and graph.num_vertices) else None
        if kernel is not None:
            return self._search_components_kernel(
                graph, kernel, model, best, stats, deadline, minimum_size
            )
        # Search the most promising components first (highest degeneracy — the
        # only place a big clique can hide), so the incumbent grows early and
        # the remaining components are pruned cheaply.  Ties break on the
        # smallest member id so the visit order (and therefore the reported
        # optimum among equally-sized cliques) never depends on the insertion
        # order of the graph being searched.
        components = sorted(
            connected_components(graph),
            key=lambda component: (
                -degeneracy(graph, component),
                min(map(str, component)),
            ),
        )
        lower = model.lower
        domain = model.domain
        code_of = model.code_of()
        for component in components:
            if len(component) < minimum_size or len(component) <= len(best):
                continue
            histogram = graph.attribute_histogram(component)
            if any(
                histogram.get(value, 0) < lower[index]
                for index, value in enumerate(domain)
            ):
                continue
            rank = compute_ordering(graph, component, self.config.ordering)
            ordered = sorted(component, key=lambda v: rank[v])
            best = self._branch(
                graph, frozenset(), ordered, [0] * len(domain), model, code_of,
                best, stats, deadline, depth=0,
            )
        return best

    def _search_components_kernel(
        self,
        graph: AttributedGraph,
        kernel,
        model: ActiveModel,
        best: frozenset,
        stats: SearchStats,
        deadline: Deadline,
        minimum_size: int,
    ) -> frozenset:
        """Kernel fast path of the component loop (same visit order, same prunes).

        Component discovery rides the adjacency bitsets, the degeneracy sort
        reads the kernel's (canonical, per-component) core numbers, and the
        per-attribute feasibility filter is an AND + popcount per component
        and attribute value.
        """
        from repro.kernel.bitops import bits_list
        from repro.kernel.cores import colorful_core_order
        from repro.kernel.search import KernelBranchAndBound
        from repro.kernel.view import SubgraphView

        cores = kernel.core_numbers()
        tie_keys = kernel.tie_keys
        entries = []
        for mask in kernel.component_masks():
            members = bits_list(mask)
            entries.append((
                -max(cores[index] for index in members),
                min(tie_keys[index] for index in members),
                mask,
                members,
            ))
        entries.sort(key=lambda entry: entry[:2])
        lower = model.lower
        domain_masks = model.kernel_masks(kernel)
        has_budget = (
            deadline.bounded
            or self.config.branch_limit is not None
            or self.stop_event is not None
        )
        use_color_order = self.config.ordering is OrderingStrategy.COLORFUL_CORE
        for _, _, mask, members in entries:
            size = len(members)
            if size < minimum_size or size <= len(best):
                continue
            if any(
                (mask & domain_masks[index]).bit_count() < lower[index]
                for index in range(len(lower))
            ):
                continue
            if use_color_order:
                ordered = colorful_core_order(kernel, mask)
            else:
                component = [kernel.vertex_of[index] for index in members]
                rank = compute_ordering(graph, component, self.config.ordering)
                ordered = sorted(component, key=lambda v: rank[v])
            searcher = KernelBranchAndBound(
                view=SubgraphView(kernel, graph, ordered),
                model=model,
                stats=stats,
                bound_depth=self.config.bound_depth,
                check_budget=lambda s: self._check_budget(s, deadline),
                best_size=len(best),
                best_clique=best,
                has_budget=has_budget,
            )
            if self.on_improve is not None:
                # The kernel searcher's hook carries only the size; it always
                # updates ``best_clique`` *before* firing, so the closure can
                # attach the clique for the streaming surface.
                searcher.on_improve = (
                    lambda size, s=searcher: self._notify_improve(size, s.best_clique)
                )
            try:
                _, best = searcher.run()
            finally:
                # On a budget abort the searcher still holds the best clique
                # it had found; mirror it so solve() can return it.
                best = searcher.best_clique
                self._incumbent = best
        return best

    def _check_budget(self, stats: SearchStats, deadline: Deadline) -> None:
        if stats.branches_explored % 64 == 0:
            if deadline.expired():
                raise _TimeBudgetExceeded()
            stop = self.stop_event
            if stop is not None and stop.is_set():
                raise _TimeBudgetExceeded()
        if (
            self.config.branch_limit is not None
            and stats.branches_explored > self.config.branch_limit
        ):
            raise _TimeBudgetExceeded()

    def _branch(
        self,
        graph: AttributedGraph,
        clique: frozenset,
        candidates: list[Vertex],
        counts_r: list[int],
        model: ActiveModel,
        code_of: dict,
        best: frozenset,
        stats: SearchStats,
        deadline: Deadline,
        depth: int,
    ) -> frozenset:
        """Recursive branch step: ``clique`` is R, ``candidates`` is C sorted by rank.

        ``counts_r`` holds the per-domain-value attribute counts of R and is
        threaded through the recursion mutate-then-undo style instead of
        being recounted per branch (the recount was an O(|R|) scan at every
        node).  This is the pre-kernel fallback path — the kernel search in
        :mod:`repro.kernel.search` replays exactly this decision procedure on
        bitsets and is the default.
        """
        stats.branches_explored += 1
        self._check_budget(stats, deadline)
        lower = model.lower
        gap = model.gap
        num_values = len(lower)
        minimum_size = model.min_size
        attribute = graph.attribute
        # Two-value domains keep the historic all-scalar arithmetic (an
        # arity specialisation, mirrored in the kernel search; wider domains
        # take the generic per-value loops with identical semantics).
        binary = num_values == 2

        # R itself is always a clique; record it whenever it is fair and larger.
        if len(clique) > len(best):
            if binary:
                fair = (
                    counts_r[0] >= lower[0]
                    and counts_r[1] >= lower[1]
                    and (gap is None or abs(counts_r[0] - counts_r[1]) <= gap)
                )
            else:
                fair = all(
                    counts_r[index] >= lower[index] for index in range(num_values)
                )
                if fair and gap is not None and abs(counts_r[0] - counts_r[1]) > gap:
                    fair = False
            if fair:
                best = clique
                self._incumbent = best
                stats.solutions_found += 1
                self._notify_improve(len(best), best)

        if not candidates:
            return best

        target = max(minimum_size, len(best) + 1)
        if len(clique) + len(candidates) < target:
            stats.pruned_by_size += 1
            return best

        if binary:
            value_0 = model.domain[0]
            count_c_0 = sum(1 for v in candidates if attribute(v) == value_0)
            count_c_1 = len(candidates) - count_c_0
            if counts_r[0] + count_c_0 < lower[0] or counts_r[1] + count_c_1 < lower[1]:
                stats.pruned_by_attribute_feasibility += 1
                return best
            if gap is not None and (
                counts_r[0] > counts_r[1] + count_c_1 + gap
                or counts_r[1] > counts_r[0] + count_c_0 + gap
            ):
                stats.pruned_by_fairness_gap += 1
                return best
        else:
            counts_c = [0] * num_values
            for vertex in candidates:
                counts_c[code_of[attribute(vertex)]] += 1
            if any(
                counts_r[index] + counts_c[index] < lower[index]
                for index in range(num_values)
            ):
                stats.pruned_by_attribute_feasibility += 1
                return best
            if gap is not None and (
                counts_r[0] > counts_r[1] + counts_c[1] + gap
                or counts_r[1] > counts_r[0] + counts_c[0] + gap
            ):
                stats.pruned_by_fairness_gap += 1
                return best

        stack = model.bound_stack
        if stack is not None and depth < self.config.bound_depth:
            stats.bound_evaluations += 1
            context = model.bound_context(graph, clique, candidates)
            if stack.prunes(context, max(minimum_size - 1, len(best))):
                stats.pruned_by_bound += 1
                return best

        # At the root the candidates are iterated in *descending* rank order:
        # high-rank vertices (large colorful core numbers, where the biggest
        # fair cliques live) are explored first, so the incumbent becomes
        # large quickly and the remaining low-rank roots are pruned cheaply.
        # Deeper levels keep ascending order so the early-exit size argument
        # below stays valid for the suffix that is yet to be explored.
        positions = range(len(candidates))
        if depth == 0:
            positions = reversed(positions)
        for index in positions:
            vertex = candidates[index]
            remaining = len(candidates) - index
            if len(clique) + remaining < max(minimum_size, len(best) + 1):
                stats.pruned_by_incumbent += 1
                if depth == 0:
                    continue
                break
            # One membership probe per suffix candidate against the (hoisted)
            # neighbour set; islice avoids materialising a fresh suffix copy
            # at every branch node.
            contains = graph.neighbors(vertex).__contains__
            new_candidates = list(filter(contains, islice(candidates, index + 1, None)))
            code = code_of[attribute(vertex)]
            counts_r[code] += 1
            best = self._branch(
                graph, clique | {vertex}, new_candidates, counts_r, model,
                code_of, best, stats, deadline, depth + 1,
            )
            counts_r[code] -= 1
        return best


def build_search_config(
    bound_stack: BoundStack | str | None = "ubAD",
    use_reduction: bool = True,
    use_heuristic: bool = True,
    time_limit: float | None = None,
    ordering: OrderingStrategy = OrderingStrategy.COLORFUL_CORE,
    branch_limit: int | None = None,
    bound_depth: int = 2,
    reduction_stages: Sequence[str] = DEFAULT_STAGES,
    use_kernel: bool = True,
) -> MaxRFCConfig:
    """Build a :class:`MaxRFCConfig` from user-facing options.

    ``bound_stack`` accepts a Table II configuration name (``"ubAD"``,
    ``"ubAD+ubcp"``…) besides a ready-made :class:`BoundStack`.  Both the
    legacy :func:`find_maximum_fair_clique` convenience function and the
    ``exact`` engine of :mod:`repro.api` construct their configuration here,
    which is what guarantees the two surfaces search identically.
    """
    if isinstance(bound_stack, str):
        from repro.bounds.stacks import get_stack

        bound_stack = get_stack(bound_stack)
    config = MaxRFCConfig(
        bound_stack=bound_stack,
        use_reduction=use_reduction,
        reduction_stages=tuple(reduction_stages),
        use_heuristic=use_heuristic,
        time_limit=time_limit,
        ordering=ordering,
        branch_limit=branch_limit,
        bound_depth=bound_depth,
        use_kernel=use_kernel,
        algorithm_name="MaxRFC" if bound_stack is None else "MaxRFC+ub",
    )
    if use_heuristic and bound_stack is not None:
        config.algorithm_name = "MaxRFC+ub+HeurRFC"
    return config


def find_maximum_fair_clique(
    graph: AttributedGraph,
    k: int,
    delta: int,
    bound_stack: BoundStack | str | None = "ubAD",
    use_reduction: bool = True,
    use_heuristic: bool = True,
    time_limit: float | None = None,
    ordering: OrderingStrategy = OrderingStrategy.COLORFUL_CORE,
) -> SearchResult:
    """High-level convenience API for the exact search.

    Parameters mirror :class:`MaxRFCConfig`; ``bound_stack`` additionally
    accepts a Table II configuration name (``"ubAD"``, ``"ubAD+ubcp"``…).
    This is a thin shim over the same solver the unified :func:`repro.solve`
    API dispatches to; new code should prefer the query interface.

    Examples
    --------
    >>> from repro.graph import paper_example_graph
    >>> result = find_maximum_fair_clique(paper_example_graph(), k=3, delta=1)
    >>> result.size
    7
    """
    config = build_search_config(
        bound_stack=bound_stack,
        use_reduction=use_reduction,
        use_heuristic=use_heuristic,
        time_limit=time_limit,
        ordering=ordering,
    )
    return MaxRFC(config).solve(graph, k, delta)


def maximum_fair_clique_size(graph: AttributedGraph, k: int, delta: int) -> int:
    """Return just the size of the maximum relative fair clique (0 when none exists)."""
    return find_maximum_fair_clique(graph, k, delta).size


def assert_valid_result(graph: AttributedGraph, result: SearchResult) -> None:
    """Raise :class:`SearchError` if ``result``'s clique is not a valid fair clique."""
    if not result.found:
        return
    if not graph.is_clique(result.clique):
        raise SearchError("search returned a vertex set that is not a clique")
    if not fairness_satisfied(graph, result.clique, result.k, result.delta):
        raise SearchError("search returned a clique violating the fairness constraints")
