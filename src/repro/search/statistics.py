"""Search statistics collected by MaxRFC and the heuristics.

The experiment harness reports these counters alongside runtimes so the
effect of every pruning rule (Figs. 6-7, Table II) can be attributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Counters accumulated during one search run."""

    branches_explored: int = 0
    solutions_found: int = 0
    pruned_by_size: int = 0
    pruned_by_attribute_feasibility: int = 0
    pruned_by_fairness_gap: int = 0
    pruned_by_incumbent: int = 0
    pruned_by_bound: int = 0
    bound_evaluations: int = 0
    reduction_seconds: float = 0.0
    heuristic_seconds: float = 0.0
    search_seconds: float = 0.0
    timed_out: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def total_pruned(self) -> int:
        """Total number of branches cut by any rule."""
        return (
            self.pruned_by_size
            + self.pruned_by_attribute_feasibility
            + self.pruned_by_fairness_gap
            + self.pruned_by_incumbent
            + self.pruned_by_bound
        )

    @property
    def total_seconds(self) -> float:
        """End-to-end wall time (reduction + heuristic + branch-and-bound)."""
        return self.reduction_seconds + self.heuristic_seconds + self.search_seconds

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another run's counters into this one (used across components)."""
        self.branches_explored += other.branches_explored
        self.solutions_found += other.solutions_found
        self.pruned_by_size += other.pruned_by_size
        self.pruned_by_attribute_feasibility += other.pruned_by_attribute_feasibility
        self.pruned_by_fairness_gap += other.pruned_by_fairness_gap
        self.pruned_by_incumbent += other.pruned_by_incumbent
        self.pruned_by_bound += other.pruned_by_bound
        self.bound_evaluations += other.bound_evaluations
        self.reduction_seconds += other.reduction_seconds
        self.heuristic_seconds += other.heuristic_seconds
        self.search_seconds += other.search_seconds
        self.timed_out = self.timed_out or other.timed_out

    def to_wire(self) -> dict:
        """Plain-data dict that :meth:`from_wire` rebuilds exactly.

        Unlike :meth:`as_dict` (a reporting view with the derived
        ``total_seconds`` column), this is a lossless round-trip including
        ``extra`` — whose values must already be plain data, which is the
        contract everywhere ``extra`` is filled.
        """
        payload = self.as_dict()
        del payload["total_seconds"]  # derived, not a field
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_wire(cls, payload: dict) -> "SearchStats":
        """Rebuild counters from :meth:`to_wire` output."""
        fields = dict(payload)
        fields.pop("total_seconds", None)  # tolerate as_dict-shaped input
        return cls(**fields)

    def as_dict(self) -> dict:
        """Flat dictionary representation for table/CSV reporting."""
        return {
            "branches_explored": self.branches_explored,
            "solutions_found": self.solutions_found,
            "pruned_by_size": self.pruned_by_size,
            "pruned_by_attribute_feasibility": self.pruned_by_attribute_feasibility,
            "pruned_by_fairness_gap": self.pruned_by_fairness_gap,
            "pruned_by_incumbent": self.pruned_by_incumbent,
            "pruned_by_bound": self.pruned_by_bound,
            "bound_evaluations": self.bound_evaluations,
            "reduction_seconds": self.reduction_seconds,
            "heuristic_seconds": self.heuristic_seconds,
            "search_seconds": self.search_seconds,
            "total_seconds": self.total_seconds,
            "timed_out": self.timed_out,
        }
