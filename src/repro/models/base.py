"""The pluggable :class:`FairnessModel` layer.

Every fair-clique solver in this package answers the same question — "what is
the largest clique whose attribute composition satisfies a fairness
condition?" — and the four supported conditions (relative / weak / strong /
multi-attribute weak) differ only in a handful of places:

* which attribute **domains** they admit (the binary models require exactly
  two attribute values, the multi-attribute model takes any domain);
* the per-attribute **lower quotas** a fair clique must meet (``k`` of every
  value, for all built-in models);
* the **gap cap** between the two attribute counts (``delta`` for relative,
  ``0`` for strong, unbounded for weak, absent for multi-weak);
* which **reduction stages** soundly preserve every fair clique;
* which **bound stack** is sound for pruning (the Table II stacks encode the
  binary gap arithmetic; the multi-attribute model falls back to the
  attribute-free color bound);
* which **heuristic** seeds the incumbent.

A :class:`FairnessModel` captures exactly those decisions once, and the
search/reduction/parallel layers consume them generically — the dict
branch-and-bound (:meth:`repro.search.maxrfc.MaxRFC._branch`), the kernel
branch-and-bound (:class:`repro.kernel.search.KernelBranchAndBound`), and the
parallel shard planner (:func:`repro.parallel.sharding.plan_shards`) never
branch on model names.  Adding a new model means writing one small class
here, not porting another copy of the solver.

Solvers work with an :class:`ActiveModel` — the model *bound* to a concrete
attribute domain (always the domain of the original input graph, so a
reduction that happens to eliminate every vertex of one value cannot silently
relax the fairness condition) and to a resolved bound stack.  Active models
are immutable plain data, so the parallel executor ships them to worker
processes as part of the one-time pool payload.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.bounds.base import BoundStack
from repro.exceptions import InvalidParameterError
from repro.graph.validation import validate_parameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.attributed_graph import AttributedGraph, Vertex

#: Reduction stages sound for the binary models (Algorithm 2, lines 1-3).
BINARY_STAGES: tuple[str, ...] = ("EnColorfulCore", "ColorfulSup", "EnColorfulSup")

#: Reduction stages sound for any attribute domain: the colorful
#: ``(k-1)``-core generalises verbatim (every member of a fair clique has, for
#: every value, at least ``k-1`` distinct colors among its neighbours of that
#: value), while the support peels and the enhanced core encode binary
#: only-a/only-b/mixed arithmetic and stay binary-exclusive.
MULTI_STAGES: tuple[str, ...] = ("ColorfulCore",)


@dataclass(frozen=True)
class ActiveModel:
    """A :class:`FairnessModel` bound to one attribute domain and bound stack.

    This is the object the hot paths actually read: plain scalars and tuples,
    no graph references, picklable for the parallel executor.

    Attributes
    ----------
    spec:
        The underlying model.
    domain:
        The attribute values of the *original* input graph, in the canonical
        sorted order.  Counts arrays everywhere are indexed by position in
        this tuple; a value eliminated by reduction simply contributes an
        all-zero mask, so its quota can never be met.
    lower:
        Per-domain-value lower quotas (``k`` each for the built-in models).
    gap:
        Cap on ``|cnt(a) - cnt(b)|`` for binary models, ``None`` when the
        model has no gap constraint.  Only ever non-None on two-value domains.
    bound_delta:
        The ``delta`` fed into the Table II bound formulas (the historic
        "unbounded" encoding ``max(n, 1)`` for the weak model, ``0``
        otherwise when the model is gap-free).
    min_size:
        Smallest size any fair clique can have (``sum(lower)``).
    bound_stack:
        The resolved pruning stack (``None`` disables bound pruning).
    """

    spec: "FairnessModel"
    domain: tuple[str, ...]
    lower: tuple[int, ...]
    gap: Optional[int]
    bound_delta: int
    min_size: int
    bound_stack: Optional[BoundStack] = field(default=None, compare=False)

    @property
    def name(self) -> str:
        """The model name (``"relative"``, ``"weak"``, …)."""
        return self.spec.name

    @property
    def quota(self) -> int:
        """The uniform per-attribute quota ``k`` of the underlying model."""
        return self.spec.k

    @property
    def num_values(self) -> int:
        """Number of attribute values in the bound domain."""
        return len(self.domain)

    def is_fair_counts(self, counts: Sequence[int]) -> bool:
        """Feasibility of an attribute histogram given as per-domain counts."""
        for count, quota in zip(counts, self.lower):
            if count < quota:
                return False
        if self.gap is not None and abs(counts[0] - counts[1]) > self.gap:
            return False
        return True

    def is_fair_histogram(self, histogram: Mapping[str, int]) -> bool:
        """Feasibility of a ``{value: count}`` attribute histogram."""
        return self.is_fair_counts(
            [histogram.get(value, 0) for value in self.domain]
        )

    def code_of(self) -> dict:
        """Mapping from attribute value to its position in ``domain``."""
        return {value: index for index, value in enumerate(self.domain)}

    def kernel_masks(self, kernel) -> tuple[int, ...]:
        """Per-domain-value vertex bitsets of a kernel snapshot.

        The kernel's attribute masks are indexed by *its* codes; this remaps
        them onto the model's domain order.  A domain value the reduction
        eliminated from the snapshot keeps an all-zero mask, so its quota
        can never be met — which is exactly the sound outcome.
        """
        mask_of = {
            value: kernel.attr_masks[code]
            for code, value in enumerate(kernel.attribute_values)
        }
        return tuple(mask_of.get(value, 0) for value in self.domain)

    def view_slots(self, view) -> tuple[tuple[int, ...], list[int]]:
        """Per-domain local masks and per-position domain codes of a view.

        Returns ``(masks, codes)`` where ``masks[slot]`` is the view-local
        bitset of domain value ``slot`` and ``codes[p]`` is the domain slot
        of local position ``p``.  Unlike :meth:`kernel_masks` this direction
        cannot degrade gracefully — a vertex whose attribute value is
        *outside* the domain has no quota slot to count toward — so a
        too-narrow domain is rejected loudly instead of miscounting.
        """
        slot_of = {value: index for index, value in enumerate(self.domain)}
        kernel_values = view.kernel.attribute_values
        slots = []
        for value in kernel_values:
            slot = slot_of.get(value)
            if slot is None:
                raise InvalidParameterError(
                    f"attribute value {value!r} of the search graph is not in "
                    f"the model's domain {self.domain!r}; bind the model to "
                    "the original graph's attribute values"
                )
            slots.append(slot)
        masks = [0] * len(self.domain)
        for code, slot in enumerate(slots):
            masks[slot] |= view.attr_masks[code]
        codes = [slots[code] for code in view.attr_codes]
        return tuple(masks), codes

    def bound_context(self, graph, clique, candidates):
        """A :class:`~repro.bounds.base.BoundContext` for one ``(R, C)`` instance.

        Unlike the public :func:`~repro.bounds.base.make_context` — which
        refuses non-binary graphs because the attribute-aware bounds are
        unsound there — this builds the context from the model's own domain:
        on two-value domains the attribute pair is the canonical one (even
        if reduction eliminated one value from the working graph), and on
        wider domains the pair degrades to the first domain values, which is
        safe *only* because the model's resolved stack then contains
        attribute-free bounds exclusively.
        """
        from repro.bounds.base import BoundContext

        if len(self.domain) >= 2:
            attribute_a, attribute_b = self.domain[0], self.domain[1]
        else:
            attribute_a = attribute_b = self.domain[0] if self.domain else "a"
        return BoundContext(
            graph=graph,
            clique=frozenset(clique),
            candidates=frozenset(candidates),
            k=self.quota,
            delta=self.bound_delta,
            attribute_a=attribute_a,
            attribute_b=attribute_b,
        )


class FairnessModel:
    """Base class of the pluggable fairness models.

    Subclasses set :attr:`name` and :attr:`requires_binary`, provide the
    quota/gap data through :meth:`bind`, and may override the reduction /
    bound-stack / heuristic hooks.  See :class:`MultiWeakFairness` for the
    smallest complete example.
    """

    #: Model identifier, matching :data:`repro.api.query.MODELS`.
    name: str = ""
    #: True when the model is defined only on two-value attribute domains.
    requires_binary: bool = True

    def __init__(self, k: int) -> None:
        validate_parameters(k, 0)
        self.k = k

    # ------------------------------------------------------------------ #
    # Domain admission
    # ------------------------------------------------------------------ #
    def admits(self, graph: "AttributedGraph") -> bool:
        """True when a fair clique could exist on this graph's attribute domain."""
        values = graph.attribute_values()
        if self.requires_binary:
            return len(values) == 2
        return len(values) >= 1

    def domain_of(self, graph: "AttributedGraph") -> tuple[str, ...]:
        """The attribute domain the search is defined over (the input graph's)."""
        return graph.attribute_values()

    # ------------------------------------------------------------------ #
    # Quota / gap structure
    # ------------------------------------------------------------------ #
    def lower_quotas(self, num_values: int) -> tuple[int, ...]:
        """Per-value lower quotas: every built-in model demands ``k`` of each."""
        return (self.k,) * num_values

    def gap_cap(self) -> Optional[int]:
        """Cap on the binary attribute-count gap (``None`` = unconstrained)."""
        return None

    def bound_delta_value(self) -> int:
        """The ``delta`` plugged into the Table II bound formulas."""
        gap = self.gap_cap()
        return 0 if gap is None else gap

    # ------------------------------------------------------------------ #
    # Solver-layer hooks
    # ------------------------------------------------------------------ #
    def reduction_stages(self, requested: Sequence[str]) -> tuple[str, ...]:
        """Reduction stages sound for this model (default: pass-through)."""
        return tuple(requested)

    def resolve_bound_stack(
        self, requested: "BoundStack | str | None"
    ) -> Optional[BoundStack]:
        """Map a requested stack (object or Table II name) to a sound stack."""
        if requested is None:
            return None
        if isinstance(requested, str):
            from repro.bounds.stacks import get_stack

            return get_stack(requested)
        return requested

    def heuristic_seed(self, graph: "AttributedGraph") -> frozenset:
        """A (possibly empty) fair clique used to seed the incumbent."""
        return frozenset()

    def algorithm_name(self, base: str) -> str:
        """Human-readable solver label (``base`` comes from the search config)."""
        return base

    def verify(self, graph: "AttributedGraph", vertices: Iterable["Vertex"]) -> bool:
        """True when ``vertices`` form a fair clique of this model on ``graph``."""
        members = list(dict.fromkeys(vertices))
        if not graph.is_clique(members):
            return False
        active = self.bind(self.domain_of(graph))
        return bool(members) and active.is_fair_histogram(
            graph.attribute_histogram(members)
        )

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #
    def bind(
        self,
        domain: Sequence[str],
        bound_stack: "BoundStack | str | None" = None,
    ) -> ActiveModel:
        """Bind this model to an attribute domain (and resolve its stack)."""
        domain = tuple(domain)
        lower = self.lower_quotas(len(domain))
        return ActiveModel(
            spec=self,
            domain=domain,
            lower=lower,
            gap=self.gap_cap(),
            bound_delta=self.bound_delta_value(),
            min_size=sum(lower),
            bound_stack=self.resolve_bound_stack(bound_stack),
        )

    def activate(
        self,
        graph: "AttributedGraph",
        bound_stack: "BoundStack | str | None" = None,
    ) -> ActiveModel:
        """Convenience: bind against ``graph``'s attribute domain."""
        return self.bind(self.domain_of(graph), bound_stack)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k})"


class RelativeFairness(FairnessModel):
    """The paper's relative fair clique: ``>= k`` per value, gap ``<= delta``."""

    name = "relative"
    requires_binary = True

    def __init__(self, k: int, delta: int) -> None:
        validate_parameters(k, delta)
        super().__init__(k)
        self.delta = delta

    def gap_cap(self) -> Optional[int]:
        return self.delta

    def reduction_stages(self, requested: Sequence[str]) -> tuple[str, ...]:
        return tuple(requested)

    def heuristic_seed(self, graph: "AttributedGraph") -> frozenset:
        from repro.heuristic.heur_rfc import HeurRFC

        return HeurRFC().solve(graph, self.k, self.delta).clique

    def verify(self, graph: "AttributedGraph", vertices: Iterable["Vertex"]) -> bool:
        from repro.search.verification import is_relative_fair_clique

        return is_relative_fair_clique(graph, vertices, self.k, self.delta)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k}, delta={self.delta})"


class WeakFairness(RelativeFairness):
    """Weak fair clique: ``>= k`` per value, no cap on the imbalance.

    Implemented as the relative model with the historic "unbounded delta"
    encoding (``delta = max(n, 1)`` of the original graph) so every decision
    — including the Table II bound values, which take ``delta`` as an
    additive term — is bit-for-bit what the pre-model-layer weak solver
    computed.
    """

    name = "weak"

    def __init__(self, k: int, unbounded_delta: int) -> None:
        super().__init__(k, max(unbounded_delta, 1))


class StrongFairness(RelativeFairness):
    """Strong fair clique: exactly equal attribute counts, each ``>= k``."""

    name = "strong"

    def __init__(self, k: int) -> None:
        super().__init__(k, 0)


class MultiWeakFairness(FairnessModel):
    """The weak condition generalised to any attribute domain.

    The smallest complete model: any domain admitted, ``k`` of every value,
    no gap notion — so the reduction keeps only the (d-ary) colorful core and
    the bound stack keeps only the attribute-free color bound.
    """

    name = "multi_weak"
    requires_binary = False

    def reduction_stages(self, requested: Sequence[str]) -> tuple[str, ...]:
        return MULTI_STAGES

    #: Bounds whose value never reads attributes — sound on any domain:
    #: size, color, scope degeneracy, scope h-index, and the colorful path
    #: (colors + the vertex order only).
    ATTRIBUTE_FREE_BOUNDS = frozenset({"ubs", "ubc", "ub_deg", "ub_h", "ubcp"})

    def resolve_bound_stack(
        self, requested: "BoundStack | str | None"
    ) -> Optional[BoundStack]:
        if requested is None:
            return None
        resolved = super().resolve_bound_stack(requested)
        if resolved is not None and all(
            name in self.ATTRIBUTE_FREE_BOUNDS for name in resolved.names
        ):
            # An explicitly attribute-free stack is sound as-is.
            return resolved
        from repro.bounds.simple import UB_COLOR, UB_SIZE

        # The Table II stacks encode binary gap arithmetic; substitute the
        # attribute-free core (the exact engine notes the substitution in
        # the report metadata).
        return BoundStack((UB_SIZE, UB_COLOR))

    def heuristic_seed(self, graph: "AttributedGraph") -> frozenset:
        from repro.variants.multi_attribute import greedy_multi_weak_fair_clique

        return greedy_multi_weak_fair_clique(graph, self.k)

    def algorithm_name(self, base: str) -> str:
        return base.replace("MaxRFC", "MaxMWFC").replace("HeurRFC", "GreedyMW")

    def verify(self, graph: "AttributedGraph", vertices: Iterable["Vertex"]) -> bool:
        from repro.variants.multi_attribute import is_multi_attribute_weak_fair_clique

        return is_multi_attribute_weak_fair_clique(graph, vertices, self.k)


def make_model(
    name: str,
    k: int,
    delta: Optional[int] = None,
    graph: "AttributedGraph | None" = None,
) -> FairnessModel:
    """Build the built-in model called ``name``.

    ``delta`` is required for (and only for) the relative model.  ``graph``
    is consulted only by the weak model, whose historic unbounded-delta
    encoding is the original graph's vertex count.
    """
    if name == "relative":
        if delta is None:
            raise InvalidParameterError("the relative model requires a delta value")
        return RelativeFairness(k, delta)
    if delta is not None:
        raise InvalidParameterError(
            f"model {name!r} does not take a delta (got {delta!r})"
        )
    if name == "weak":
        if graph is None:
            # Silently defaulting the unbounded-delta encoding would make
            # the weak model behave like a tight relative model and return
            # wrong answers; the caller must supply the graph the bound is
            # taken from (or construct WeakFairness with an explicit value).
            raise InvalidParameterError(
                "the weak model's unbounded-gap encoding is the input "
                "graph's vertex count; pass graph= to make_model (or build "
                "WeakFairness(k, unbounded_delta) directly)"
            )
        return WeakFairness(k, graph.num_vertices)
    if name == "strong":
        return StrongFairness(k)
    if name == "multi_weak":
        return MultiWeakFairness(k)
    raise InvalidParameterError(
        f"unknown fairness model {name!r}; expected one of "
        "('relative', 'weak', 'strong', 'multi_weak')"
    )
