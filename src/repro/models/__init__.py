"""``repro.models`` — the pluggable fairness-model layer.

One :class:`FairnessModel` object captures everything that distinguishes the
relative / weak / strong / multi-attribute-weak fair clique models:
attribute-domain admission, per-value lower quotas, the binary gap cap,
sound reduction stages, bound-stack selection, and the heuristic seed.  The
dict and kernel branch-and-bound, the reduction pipeline, and the parallel
executor all consume the model generically — see the README section
"The FairnessModel layer" for how to add a model.
"""

from repro.models.base import (
    ActiveModel,
    BINARY_STAGES,
    FairnessModel,
    MULTI_STAGES,
    MultiWeakFairness,
    RelativeFairness,
    StrongFairness,
    WeakFairness,
    make_model,
)

__all__ = [
    "ActiveModel",
    "BINARY_STAGES",
    "FairnessModel",
    "MULTI_STAGES",
    "MultiWeakFairness",
    "RelativeFairness",
    "StrongFairness",
    "WeakFairness",
    "make_model",
]
