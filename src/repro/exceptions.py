"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing more specific failure modes when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for structural problems in a graph (missing vertex, bad edge)."""


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class AttributeCountError(GraphError):
    """Raised when a graph does not carry exactly the two expected attributes.

    The relative fair clique model of the paper is defined for binary
    attributes ``A = {a, b}``.  Operations that rely on this assumption raise
    this error when a graph carries fewer or more attribute values.
    """


class InvalidParameterError(ReproError):
    """Raised when a search / reduction parameter (``k``, ``delta``…) is invalid."""


class ColoringError(ReproError):
    """Raised when a vertex coloring is inconsistent with the graph."""


class SearchError(ReproError):
    """Raised for failures inside the branch-and-bound or heuristic search."""


class UnsupportedQueryError(ReproError):
    """Raised when a query names a (model, engine) pair no engine supports.

    The unified :mod:`repro.api` surface dispatches queries through an engine
    registry; every engine declares which fairness models it can solve, and a
    query outside that matrix fails fast with this error instead of silently
    falling back to a different solver.
    """


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated, loaded, or parsed."""


class ExperimentError(ReproError):
    """Raised when an experiment driver is misconfigured."""
