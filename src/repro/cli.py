"""Command-line interface.

The subcommands cover the library's main entry points::

    repro-fairclique solve          --dataset DBLP --model relative --engine exact -k 3 -d 1
    repro-fairclique solve          --dataset DBLP -k 3 -d 1 --stream
    repro-fairclique solve          --dataset DBLP -k 4 -d 2 --sweep delta --sweep-values 0 1 2 3
    repro-fairclique enumerate      --dataset DBLP --model relative -k 3 -d 1 --limit 10
    repro-fairclique explain        --dataset DBLP --model relative -k 3 -d 1 --search-workers 4
    repro-fairclique search         --edges g.edges --attributes g.attrs -k 3 -d 1
    repro-fairclique reduce         --dataset Themarker -k 6
    repro-fairclique stats          --dataset DBLP
    repro-fairclique compare-models --dataset Aminer -k 4 -d 2
    repro-fairclique reproduce fig4 --scale 0.5
    repro-fairclique datasets
    repro-fairclique engines

Every query command runs through one :class:`~repro.api.FairCliqueSession`
over the loaded graph: ``solve`` answers a query (``--stream`` prints the
incumbent trajectory live, ``--top-k`` asks for the k largest maximal fair
cliques, ``--sweep`` runs the batch layer so same-``k`` queries share one
reduction run), ``enumerate`` lazily lists every maximal fair clique, and
``explain`` prints the resolved query plan without solving.  ``search`` and
``compare-models`` are retained as thin wrappers over the same path.
``python -m repro ...`` is equivalent to the installed console script.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.api import FairCliqueQuery, FairCliqueSession, available_engines, default_registry
from repro.api.query import DELTA_MODELS, MODELS
from repro.api.tasks import ENUMERATION_ENGINES
from repro.bounds.stacks import stack_names
from repro.datasets.registry import dataset_names, dataset_table, load_dataset
from repro.exceptions import ReproError
from repro.experiments.reporting import format_table, rows_to_csv
from repro.experiments.runner import experiment_ids, run_experiment
from repro.graph.io import read_edge_list, write_clique_report
from repro.reduction.pipeline import reduce_graph


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=dataset_names(), help="use a built-in dataset stand-in")
    source.add_argument("--edges", help="edge-list file (one 'u v' pair per line)")
    parser.add_argument("--attributes", help="attribute file (one 'v attr' pair per line)")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fairclique",
        description="Maximum fair clique search (ICDE 2025 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve_cmd = subparsers.add_parser(
        "solve",
        help="answer a fair-clique query (any model x engine) through the unified API",
    )
    _add_graph_source(solve_cmd)
    solve_cmd.add_argument("--model", default="relative", choices=MODELS,
                           help="fairness model to solve")
    solve_cmd.add_argument("--engine", default="exact", choices=available_engines(),
                           help="engine to dispatch to")
    solve_cmd.add_argument("-k", type=int, required=True, help="minimum vertices per attribute")
    solve_cmd.add_argument("-d", "--delta", type=int, default=None,
                           help="maximum attribute-count gap (relative model only)")
    solve_cmd.add_argument("--bound", default=None, choices=list(stack_names()) + ["none"],
                           help="upper-bound stack for the exact engine")
    solve_cmd.add_argument("--no-heuristic", action="store_true",
                           help="disable HeurRFC seeding (exact engine)")
    solve_cmd.add_argument("--no-reduction", action="store_true",
                           help="disable the reduction pipeline (exact engine)")
    solve_cmd.add_argument("--time-limit", type=float, default=None,
                           help="seconds before giving up")
    solve_cmd.add_argument("--kernel-backend", default=None,
                           choices=("int", "words", "numpy"),
                           help="kernel storage backend (default: auto — "
                                "numpy when installed, else words)")
    solve_cmd.add_argument("--search-workers", type=int, default=None,
                           help="process-pool size for the component-sharded "
                                "parallel search (exact engine, every model)")
    solve_cmd.add_argument("--stream", action="store_true",
                           help="print the incumbent trajectory live while the "
                                "exact search runs")
    solve_cmd.add_argument("--top-k", type=int, default=None, metavar="N",
                           help="return the N largest maximal fair cliques "
                                "(task='top_k') instead of one maximum clique")
    solve_cmd.add_argument("--sweep", choices=("k", "delta"), default=None,
                           help="sweep one parameter over --sweep-values via the batch layer")
    solve_cmd.add_argument("--sweep-values", type=int, nargs="+", default=None,
                           help="values of the swept parameter")
    solve_cmd.add_argument("--workers", type=int, default=None,
                           help="process-pool size for sweeps (default: in-process)")
    solve_cmd.add_argument("--report", help="write the clique membership report to this path")

    enumerate_cmd = subparsers.add_parser(
        "enumerate",
        help="lazily list every maximal fair clique (task='enumerate')",
    )
    _add_graph_source(enumerate_cmd)
    enumerate_cmd.add_argument("--model", default="relative", choices=MODELS)
    enumerate_cmd.add_argument("--engine", default="exact",
                               choices=ENUMERATION_ENGINES,
                               help="kernel-native generator, or the "
                                    "Bron-Kerbosch oracle")
    enumerate_cmd.add_argument("-k", type=int, required=True,
                               help="minimum vertices per attribute")
    enumerate_cmd.add_argument("-d", "--delta", type=int, default=None,
                               help="maximum attribute-count gap (relative model only)")
    enumerate_cmd.add_argument("--limit", type=int, default=None, metavar="N",
                               help="stop after printing N cliques (the "
                                    "generator is lazy; enumeration never "
                                    "runs past what is printed)")

    explain_cmd = subparsers.add_parser(
        "explain",
        help="print the resolved query plan (engine, reductions, bounds, shards) without solving",
    )
    _add_graph_source(explain_cmd)
    explain_cmd.add_argument("--model", default="relative", choices=MODELS)
    explain_cmd.add_argument("--engine", default="exact", choices=available_engines())
    explain_cmd.add_argument("-k", type=int, required=True)
    explain_cmd.add_argument("-d", "--delta", type=int, default=None)
    explain_cmd.add_argument("--bound", default=None, choices=list(stack_names()) + ["none"])
    explain_cmd.add_argument("--kernel-backend", default=None,
                             choices=("int", "words", "numpy"),
                             help="kernel storage backend to plan against")
    explain_cmd.add_argument("--search-workers", type=int, default=None)
    explain_cmd.add_argument("--warm", action="store_true",
                             help="solve the query once first, so the plan "
                                  "shows the warm-cache state (incl. the "
                                  "shard plan for --search-workers)")

    search = subparsers.add_parser(
        "search",
        help="find the maximum relative fair clique (wrapper over 'solve')",
    )
    _add_graph_source(search)
    search.add_argument("-k", type=int, required=True, help="minimum vertices per attribute")
    search.add_argument("-d", "--delta", type=int, required=True, help="maximum attribute-count gap")
    search.add_argument("--bound", default="ubAD", choices=list(stack_names()) + ["none"],
                        help="upper-bound stack used for pruning")
    search.add_argument("--no-heuristic", action="store_true", help="disable HeurRFC seeding")
    search.add_argument("--time-limit", type=float, default=None, help="seconds before giving up")
    search.add_argument("--report", help="write the clique membership report to this path")

    reduce_cmd = subparsers.add_parser("reduce", help="run the reduction pipeline and report sizes")
    _add_graph_source(reduce_cmd)
    reduce_cmd.add_argument("-k", type=int, required=True)

    stats = subparsers.add_parser("stats", help="print structural and fairness statistics")
    _add_graph_source(stats)

    compare = subparsers.add_parser(
        "compare-models",
        help="solve the weak, relative, and strong fair clique models side by side",
    )
    _add_graph_source(compare)
    compare.add_argument("-k", type=int, required=True)
    compare.add_argument("-d", "--delta", type=int, required=True)
    compare.add_argument("--time-limit", type=float, default=None)

    reproduce = subparsers.add_parser("reproduce", help="re-run a paper table or figure")
    reproduce.add_argument("experiment", choices=experiment_ids())
    reproduce.add_argument("--scale", type=float, default=1.0,
                           help="dataset scale factor (smaller = faster)")
    reproduce.add_argument("--csv", help="also write the raw rows as CSV to this path")

    serve_cmd = subparsers.add_parser(
        "serve",
        help="run the async fair-clique query service (HTTP/JSON over a session pool)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_cmd.add_argument("--port", type=int, default=8710,
                           help="bind port (0 picks a free one)")
    serve_cmd.add_argument("--preload", action="append", default=[],
                           metavar="DATASET", choices=dataset_names(),
                           help="serve a built-in dataset (repeatable; the "
                                "graph id is the lowercased dataset name)")
    serve_cmd.add_argument("--scale", type=float, default=1.0,
                           help="scale factor for preloaded datasets")
    serve_cmd.add_argument("--session-capacity", type=int, default=8,
                           help="max warm sessions held in the LRU registry")
    serve_cmd.add_argument("--result-cache", type=int, default=1024,
                           help="cross-request result cache capacity (0 disables)")
    serve_cmd.add_argument("--max-in-flight", type=int, default=8,
                           help="max queries executing concurrently")
    serve_cmd.add_argument("--queue-depth", type=int, default=32,
                           help="max queries waiting beyond the in-flight cap "
                                "(the rest get 429)")
    serve_cmd.add_argument("--executor-workers", type=int, default=4,
                           help="worker threads in the executor backend")
    serve_cmd.add_argument("--default-tier", default="standard",
                           choices=("free", "standard", "unlimited"),
                           help="quota tier applied when a request names none")
    serve_cmd.add_argument("--breaker-threshold", type=int, default=5,
                           help="consecutive solve crashes before a graph's "
                                "circuit breaker opens (503s)")
    serve_cmd.add_argument("--breaker-reset", type=float, default=30.0,
                           metavar="SECONDS",
                           help="seconds an open breaker waits before "
                                "admitting a half-open probe")
    serve_cmd.add_argument("--data-dir", default=None, metavar="DIR",
                           help="durable state directory: uploaded graphs are "
                                "write-ahead logged, cacheable results and "
                                "parallel-solve checkpoints persist, and a "
                                "restart warm-boots from it (default: "
                                "in-memory only)")
    serve_cmd.add_argument("--wal-fsync-every", type=int, default=8,
                           metavar="N",
                           help="fsync the batched result WAL every N appends "
                                "(graph acks always fsync)")
    serve_cmd.add_argument("--wal-compact-every", type=int, default=256,
                           metavar="N",
                           help="rewrite a WAL as snapshot+tail every N "
                                "appends")

    subparsers.add_parser("datasets", help="list the built-in dataset stand-ins")
    subparsers.add_parser("engines", help="list registered engines and supported models")
    return parser


def _load_graph(args: argparse.Namespace):
    if getattr(args, "dataset", None):
        return load_dataset(args.dataset, scale=args.scale)
    if not args.attributes:
        raise SystemExit("--attributes is required when --edges is used")
    return read_edge_list(args.edges, args.attributes)


def _exact_options(args: argparse.Namespace) -> dict:
    """Exact-engine options from the shared CLI flags."""
    options: dict = {}
    bound = getattr(args, "bound", None)
    if bound is not None:
        options["bound_stack"] = None if bound == "none" else bound
    if getattr(args, "no_heuristic", False):
        options["use_heuristic"] = False
    if getattr(args, "no_reduction", False):
        options["use_reduction"] = False
    return options


def _print_clique_body(graph, report, report_path: str | None = None) -> None:
    """Everything below the headline: balance, members, optional report file."""
    if report.found:
        print(f"attribute balance: {report.attribute_counts}")
        for vertex in sorted(report.clique, key=str):
            print(f"  {vertex}\t{graph.attribute(vertex)}\t{graph.label(vertex)}")
        if report_path:
            write_clique_report(graph, report.clique, report_path)
            print(f"report written to {report_path}")
    else:
        model_word = "relative " if report.model == "relative" else f"{report.model} "
        suffix = "(k, delta)" if report.delta is not None else "k"
        print(f"no {model_word}fair clique satisfies the given {suffix}")


def _print_report(graph, report, report_path: str | None = None) -> None:
    print(report.summary())
    _print_clique_body(graph, report, report_path)


def _apply_kernel_backend(args: argparse.Namespace) -> None:
    """Install ``--kernel-backend`` as the process-wide backend override.

    Setting the environment variable (rather than threading a parameter
    through every layer) makes the choice reach each ``graph.compile()`` on
    the query path *and* any forked pool workers.  Validation happens here
    so a ``numpy`` request without numpy fails as a clean CLI error.
    """
    backend = getattr(args, "kernel_backend", None)
    if backend is None:
        return
    from repro.kernel.backend import ENV_VAR, resolve_backend

    resolve_backend(backend)
    os.environ[ENV_VAR] = backend


def _command_solve(args: argparse.Namespace) -> int:
    _apply_kernel_backend(args)
    graph = _load_graph(args)
    # Exact-only flags are passed through for every engine: the engine's own
    # option validation rejects ones it does not understand, instead of the
    # CLI silently dropping them.
    options = _exact_options(args)
    base = dict(
        model=args.model,
        k=args.k,
        delta=args.delta,
        engine=args.engine,
        time_limit=args.time_limit,
        workers=args.search_workers,
        options=options,
    )
    if args.top_k is not None:
        base.update(task="top_k", count=args.top_k)
        if args.report:
            raise SystemExit("--report is not supported with --top-k "
                             "(the task prints a clique list, not one clique)")
    if args.stream and (args.sweep is not None or args.top_k is not None):
        raise SystemExit("--stream follows one maximum-clique solve; "
                         "it cannot combine with --sweep or --top-k")

    with FairCliqueSession(graph) as session:
        if args.stream:
            return _stream_solve(graph, session, FairCliqueQuery(**base), args.report)
        if args.sweep is None:
            report = session.solve(FairCliqueQuery(**base))
            if report.cliques is not None:
                _print_clique_list(graph, report)
                return 0
            _print_report(graph, report, args.report)
            return 0

        if not args.sweep_values:
            raise SystemExit("--sweep requires --sweep-values")
        if args.sweep == "delta" and args.model not in DELTA_MODELS:
            raise SystemExit(f"model {args.model!r} has no delta to sweep")
        if args.report:
            raise SystemExit("--report is not supported with --sweep "
                             "(the sweep prints a table, not one clique)")
        queries = []
        for value in args.sweep_values:
            fields = dict(base)
            fields[args.sweep] = value
            queries.append(FairCliqueQuery(**fields))
        reports = session.solve_many(queries, max_workers=args.workers)
        rows = [
            {
                args.sweep: getattr(query, args.sweep),
                "size": report.size,
                "counts": report.attribute_counts,
                "gap": report.fairness_gap,
                "optimal": report.optimal,
                "seconds": round(report.seconds, 3),
            }
            for query, report in zip(queries, reports)
        ]
        print(format_table(
            rows,
            title=f"{args.model}/{args.engine} sweep over {args.sweep} (k={args.k})",
        ))
        return 0


def _stream_solve(graph, session: FairCliqueSession, query: FairCliqueQuery,
                  report_path: str | None) -> int:
    """Print the incumbent trajectory live, then the final report."""
    final = None
    for event in session.stream(query):
        if event.final:
            final = event.report
            break
        members = ""
        if event.clique is not None:
            members = "  {" + ", ".join(sorted(map(str, event.clique))) + "}"
        print(f"[{event.seconds:8.3f}s] incumbent size={event.size}{members}",
              flush=True)
    assert final is not None
    print(f"[{final.seconds:8.3f}s] done")
    _print_report(graph, final, report_path)
    return 0


def _print_clique_list(graph, report) -> None:
    """Body of the enumeration tasks: one line per clique."""
    for clique in report.cliques:
        members = ", ".join(sorted(map(str, clique)))
        histogram = graph.attribute_histogram(clique)
        print(f"  size={len(clique)}  counts={histogram}  {{{members}}}")
    print(report.summary())


def _command_enumerate(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    query = FairCliqueQuery(
        model=args.model, k=args.k, delta=args.delta,
        engine=args.engine, task="enumerate",
    )
    total = 0
    sizes: dict[int, int] = {}
    with FairCliqueSession(graph) as session:
        # The generator is lazy: with --limit N nothing past the N-th clique
        # is ever enumerated.
        for clique in session.enumerate(query):
            total += 1
            sizes[len(clique)] = sizes.get(len(clique), 0) + 1
            members = ", ".join(sorted(map(str, clique)))
            print(f"  size={len(clique)}  {{{members}}}")
            if args.limit is not None and total >= args.limit:
                print(f"stopped at --limit {args.limit}")
                return 0
    by_size = ", ".join(
        f"{count}x size {size}" for size, count in sorted(sizes.items(), reverse=True)
    )
    print(f"{total} maximal {args.model} fair clique(s)"
          + (f": {by_size}" if total else ""))
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    _apply_kernel_backend(args)
    graph = _load_graph(args)
    options = _exact_options(args)
    query = FairCliqueQuery(
        model=args.model, k=args.k, delta=args.delta, engine=args.engine,
        workers=args.search_workers, options=options,
    )
    with FairCliqueSession(graph) as session:
        if args.warm:
            session.solve(query)
            info = session.cache_info()
            print(f"(warmed: {info['reductions']} reduction(s) cached)")
        print(session.explain(query).summary())
    return 0


def _command_search(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    with FairCliqueSession(graph) as session:
        report = session.solve(
            FairCliqueQuery(
                model="relative", k=args.k, delta=args.delta,
                time_limit=args.time_limit, options=_exact_options(args),
            ),
        )
    # Keep the historical one-line format ("MaxRFC...: size=...") on top.
    status = "optimal" if report.optimal else "heuristic/truncated"
    print(f"{report.algorithm}: size={report.size} (k={report.k}, delta={report.delta}, "
          f"{status}, {report.seconds:.3f}s, {report.stats.branches_explored} branches)")
    _print_clique_body(graph, report, args.report)
    return 0


def _command_reduce(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = reduce_graph(graph, args.k)
    print(f"input: |V|={graph.num_vertices} |E|={graph.num_edges}")
    print(result.summary())
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from repro.analysis import attribute_assortativity, summarize_graph

    graph = _load_graph(args)
    summary = summarize_graph(graph).as_dict()
    summary["attribute_assortativity"] = round(attribute_assortativity(graph), 4)
    width = max(len(key) for key in summary)
    for key, value in summary.items():
        print(f"{key.ljust(width)}  {value}")
    return 0


def _command_compare_models(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    queries = [
        FairCliqueQuery(model="weak", k=args.k, time_limit=args.time_limit),
        FairCliqueQuery(model="relative", k=args.k, delta=args.delta,
                        time_limit=args.time_limit),
        FairCliqueQuery(model="strong", k=args.k, time_limit=args.time_limit),
    ]
    with FairCliqueSession(graph) as session:
        reports = session.solve_many(queries)
    rows = [
        {
            "model": report.model,
            "size": report.size,
            "counts": report.attribute_counts,
            "gap": report.fairness_gap,
            "seconds": round(report.seconds, 3),
        }
        for report in reports
    ]
    print(format_table(rows, title=f"Fair clique models (k={args.k}, delta={args.delta})"))
    return 0


def _command_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.figures import runtime_chart_from_rows

    outcome = run_experiment(args.experiment, scale=args.scale)
    print(outcome.report)
    if outcome.rows and "runtime_us" in outcome.rows[0] and "configuration" in outcome.rows[0]:
        print()
        print(runtime_chart_from_rows(
            outcome.rows,
            title=f"{args.experiment}: runtime (log-scale bars)",
        ))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(rows_to_csv(outcome.rows))
        print(f"rows written to {args.csv}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Run the service tier in the foreground until SIGINT/SIGTERM."""
    import signal
    import threading

    from repro.resilience import faults
    from repro.service import FairCliqueService, ServerHandle, ServiceConfig

    # Chaos harnesses arm fault plans through the environment; a normal
    # serve run pays one dict lookup here and nothing afterwards.  A
    # malformed plan refuses to boot — running a "chaos test" where no
    # fault can ever fire is worse than failing loudly.
    try:
        plan = faults.install_from_env()
    except faults.FaultPlanError as error:
        print(f"repro serve: {error}", file=sys.stderr, flush=True)
        return 2
    if plan is not None:
        print(f"fault injection armed: {len(plan.specs)} spec(s), "
              f"seed={plan.seed}", flush=True)

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        session_capacity=args.session_capacity,
        result_cache_capacity=args.result_cache,
        max_in_flight=args.max_in_flight,
        queue_depth=args.queue_depth,
        executor_workers=args.executor_workers,
        default_tier=args.default_tier,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_seconds=args.breaker_reset,
        data_dir=args.data_dir,
        wal_fsync_every=args.wal_fsync_every,
        wal_compact_every=args.wal_compact_every,
    )
    service = FairCliqueService(config)
    if service.recovery is not None:
        recovery = service.recovery
        print(f"warm restart from {args.data_dir}: "
              f"{recovery['graphs_recovered']} graph(s), "
              f"{recovery['results_restored']} cached result(s), "
              f"{recovery['checkpoints_found']} solve checkpoint(s)"
              + (f", {recovery['truncated_bytes']} torn byte(s) truncated"
                 if recovery.get("truncated_bytes") else ""),
              flush=True)
    for name in args.preload:
        graph = load_dataset(name, scale=args.scale)
        service.add_graph(name.lower(), graph)
        print(f"serving graph {name.lower()!r}: "
              f"|V|={graph.num_vertices} |E|={graph.num_edges}", flush=True)

    handle = ServerHandle.start(service)
    stop = threading.Event()

    def request_stop(signum, frame) -> None:
        print("\nshutting down: draining in-flight queries...", flush=True)
        stop.set()

    signal.signal(signal.SIGINT, request_stop)
    signal.signal(signal.SIGTERM, request_stop)
    print(f"fair-clique service listening on {handle.address} "
          f"(tier={config.default_tier}, in-flight={config.max_in_flight}, "
          f"queue={config.queue_depth})", flush=True)
    print("endpoints: /healthz /metrics /graphs /solve /explain /stream /enumerate",
          flush=True)
    stop.wait()
    handle.stop()
    print("drained; bye", flush=True)
    return 0


def _command_datasets() -> int:
    rows = dataset_table(scale=1.0)
    print(format_table(rows, columns=["dataset", "n", "m", "d_max", "attributes", "description"],
                       title="Built-in dataset stand-ins (Table I analogue)"))
    return 0


def _command_engines() -> int:
    rows = [
        {
            "engine": name,
            "models": ", ".join(sorted(engine.models)),
            "description": engine.description,
        }
        for name, engine in ((n, default_registry.get(n)) for n in default_registry.names())
    ]
    print(format_table(rows, columns=["engine", "models", "description"],
                       title="Registered fair-clique engines"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args, parser)
    except ReproError as error:
        # Library errors (bad parameters, unsupported model/engine pairs…)
        # become clean one-line failures instead of tracebacks.
        print(f"{parser.prog}: error: {error}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.command == "solve":
        return _command_solve(args)
    if args.command == "enumerate":
        return _command_enumerate(args)
    if args.command == "explain":
        return _command_explain(args)
    if args.command == "search":
        return _command_search(args)
    if args.command == "reduce":
        return _command_reduce(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "compare-models":
        return _command_compare_models(args)
    if args.command == "reproduce":
        return _command_reproduce(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "datasets":
        return _command_datasets()
    if args.command == "engines":
        return _command_engines()
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
