"""Command-line interface.

The subcommands cover the library's main entry points::

    repro-fairclique search         --edges g.edges --attributes g.attrs -k 3 -d 1
    repro-fairclique reduce         --dataset Themarker -k 6
    repro-fairclique stats          --dataset DBLP
    repro-fairclique compare-models --dataset Aminer -k 4 -d 2
    repro-fairclique reproduce fig4 --scale 0.5
    repro-fairclique datasets

``python -m repro ...`` is equivalent to the installed console script.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.bounds.stacks import stack_names
from repro.datasets.registry import dataset_names, dataset_table, load_dataset
from repro.experiments.reporting import format_table, rows_to_csv
from repro.experiments.runner import experiment_ids, run_experiment
from repro.graph.io import read_edge_list, write_clique_report
from repro.reduction.pipeline import reduce_graph
from repro.search.maxrfc import find_maximum_fair_clique


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fairclique",
        description="Maximum relative fair clique search (ICDE 2025 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    search = subparsers.add_parser("search", help="find the maximum fair clique of a graph")
    source = search.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=dataset_names(), help="use a built-in dataset stand-in")
    source.add_argument("--edges", help="edge-list file (one 'u v' pair per line)")
    search.add_argument("--attributes", help="attribute file (one 'v attr' pair per line)")
    search.add_argument("-k", type=int, required=True, help="minimum vertices per attribute")
    search.add_argument("-d", "--delta", type=int, required=True, help="maximum attribute-count gap")
    search.add_argument("--bound", default="ubAD", choices=list(stack_names()) + ["none"],
                        help="upper-bound stack used for pruning")
    search.add_argument("--no-heuristic", action="store_true", help="disable HeurRFC seeding")
    search.add_argument("--time-limit", type=float, default=None, help="seconds before giving up")
    search.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    search.add_argument("--report", help="write the clique membership report to this path")

    reduce_cmd = subparsers.add_parser("reduce", help="run the reduction pipeline and report sizes")
    reduce_source = reduce_cmd.add_mutually_exclusive_group(required=True)
    reduce_source.add_argument("--dataset", choices=dataset_names())
    reduce_source.add_argument("--edges")
    reduce_cmd.add_argument("--attributes")
    reduce_cmd.add_argument("-k", type=int, required=True)
    reduce_cmd.add_argument("--scale", type=float, default=1.0)

    stats = subparsers.add_parser("stats", help="print structural and fairness statistics")
    stats_source = stats.add_mutually_exclusive_group(required=True)
    stats_source.add_argument("--dataset", choices=dataset_names())
    stats_source.add_argument("--edges")
    stats.add_argument("--attributes")
    stats.add_argument("--scale", type=float, default=1.0)

    compare = subparsers.add_parser(
        "compare-models",
        help="solve the weak, relative, and strong fair clique models side by side",
    )
    compare_source = compare.add_mutually_exclusive_group(required=True)
    compare_source.add_argument("--dataset", choices=dataset_names())
    compare_source.add_argument("--edges")
    compare.add_argument("--attributes")
    compare.add_argument("-k", type=int, required=True)
    compare.add_argument("-d", "--delta", type=int, required=True)
    compare.add_argument("--scale", type=float, default=1.0)
    compare.add_argument("--time-limit", type=float, default=None)

    reproduce = subparsers.add_parser("reproduce", help="re-run a paper table or figure")
    reproduce.add_argument("experiment", choices=experiment_ids())
    reproduce.add_argument("--scale", type=float, default=1.0,
                           help="dataset scale factor (smaller = faster)")
    reproduce.add_argument("--csv", help="also write the raw rows as CSV to this path")

    subparsers.add_parser("datasets", help="list the built-in dataset stand-ins")
    return parser


def _load_graph(args: argparse.Namespace):
    if getattr(args, "dataset", None):
        return load_dataset(args.dataset, scale=args.scale)
    if not args.attributes:
        raise SystemExit("--attributes is required when --edges is used")
    return read_edge_list(args.edges, args.attributes)


def _command_search(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    bound = None if args.bound == "none" else args.bound
    result = find_maximum_fair_clique(
        graph, args.k, args.delta,
        bound_stack=bound,
        use_heuristic=not args.no_heuristic,
        time_limit=args.time_limit,
    )
    print(result.summary())
    if result.found:
        balance = result.attribute_balance(graph)
        print(f"attribute balance: {balance}")
        for vertex in sorted(result.clique, key=str):
            print(f"  {vertex}\t{graph.attribute(vertex)}\t{graph.label(vertex)}")
        if args.report:
            write_clique_report(graph, result.clique, args.report)
            print(f"report written to {args.report}")
    else:
        print("no relative fair clique satisfies the given (k, delta)")
    return 0


def _command_reduce(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = reduce_graph(graph, args.k)
    print(f"input: |V|={graph.num_vertices} |E|={graph.num_edges}")
    print(result.summary())
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from repro.analysis import attribute_assortativity, summarize_graph

    graph = _load_graph(args)
    summary = summarize_graph(graph).as_dict()
    summary["attribute_assortativity"] = round(attribute_assortativity(graph), 4)
    width = max(len(key) for key in summary)
    for key, value in summary.items():
        print(f"{key.ljust(width)}  {value}")
    return 0


def _command_compare_models(args: argparse.Namespace) -> int:
    from repro.analysis import describe_clique
    from repro.variants import model_comparison

    graph = _load_graph(args)
    results = model_comparison(graph, args.k, args.delta, time_limit=args.time_limit)
    rows = []
    for model in ("weak", "relative", "strong"):
        result = results[model]
        report = describe_clique(graph, result.clique)
        rows.append(
            {
                "model": model,
                "size": result.size,
                "counts": report.counts,
                "gap": report.gap,
                "seconds": round(result.stats.total_seconds, 3),
            }
        )
    print(format_table(rows, title=f"Fair clique models (k={args.k}, delta={args.delta})"))
    return 0


def _command_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.figures import runtime_chart_from_rows

    outcome = run_experiment(args.experiment, scale=args.scale)
    print(outcome.report)
    if outcome.rows and "runtime_us" in outcome.rows[0] and "configuration" in outcome.rows[0]:
        print()
        print(runtime_chart_from_rows(
            outcome.rows,
            title=f"{args.experiment}: runtime (log-scale bars)",
        ))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(rows_to_csv(outcome.rows))
        print(f"rows written to {args.csv}")
    return 0


def _command_datasets() -> int:
    rows = dataset_table(scale=1.0)
    print(format_table(rows, columns=["dataset", "n", "m", "d_max", "attributes", "description"],
                       title="Built-in dataset stand-ins (Table I analogue)"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "search":
        return _command_search(args)
    if args.command == "reduce":
        return _command_reduce(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "compare-models":
        return _command_compare_models(args)
    if args.command == "reproduce":
        return _command_reproduce(args)
    if args.command == "datasets":
        return _command_datasets()
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
