"""Checksummed JSONL write-ahead logging for the service tier.

The durable store's contract is deliberately small: *acknowledged writes
survive a crash, and a torn tail never blocks recovery*.  Everything here
follows from those two sentences.

Format
------
Each record is one line of canonical JSON (sorted keys, no whitespace)
carrying a ``crc`` field::

    {"crc": 2186249184, "data": {...}, "lsn": 3, "type": "graph.put"}

The checksum is ``zlib.crc32`` over the canonical encoding of the record
*without* the ``crc`` key, so a reader can re-derive it from the parsed
object alone.  Lines stay valid JSON — ``grep``/``jq`` work on a live log.

Recovery replays the file line by line and stops at the first record that
fails to parse, fails its checksum, or is missing its trailing newline
(a torn final write).  The file is then truncated at that byte offset:
recovery *repairs* a torn tail instead of refusing to boot, and the bytes
dropped are reported so the operator can see it happened.

Durability is fsync-batched: ``append(..., sync=True)`` forces an fsync
before returning (graph uploads — the ack implies durability), while
unsynced appends (cached solve results — reproducible data) are flushed
every ``fsync_every`` records.

Compaction rewrites the log as a *snapshot + tail* pair: the snapshot is
atomically replaced (tmp file + ``os.replace``) with one record per live
key and the tail is truncated.  Replay applies snapshot records first,
then the tail — both last-wins, so replaying a pre-compaction tail over a
fresh snapshot is idempotent.

Fault seams ``wal.append`` and ``wal.fsync`` fire inside the write path so
tests and the chaos harness can inject ``ENOSPC``-style failures exactly
where the real ones happen; both OS errors and injected faults surface as
:class:`WalWriteError` so the service can map disk pressure to a retryable
503 instead of a crashed connection handler.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Optional

from repro.resilience import faults

__all__ = [
    "DurabilityError",
    "WalError",
    "WalWriteError",
    "ReplayReport",
    "WriteAheadLog",
    "SnapshotLog",
]


class DurabilityError(Exception):
    """Base class for durable-store failures.

    Deliberately *not* a ``ReproError``: the service maps input errors to
    422, but a WAL failure is an operational condition (disk pressure,
    injected fault) that must map to a retryable 503.
    """


class WalError(DurabilityError):
    """A write-ahead log could not be read or maintained."""


class WalWriteError(WalError):
    """An append or fsync failed; the record is NOT durable.

    Raised before the write is acknowledged, so callers may safely retry
    the whole operation once the underlying condition clears.
    """


def _encode(record: dict) -> bytes:
    """Canonical line encoding with an embedded self-checksum."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    line = json.dumps({**record, "crc": crc}, sort_keys=True, separators=(",", ":"))
    return line.encode("utf-8") + b"\n"


def _decode(line: bytes) -> Optional[dict]:
    """Parse and verify one line; ``None`` on any corruption."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    stored = record.pop("crc")
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if stored != (zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF):
        return None
    return record


@dataclass
class ReplayReport:
    """What a recovery pass found (and repaired) in one log file."""

    records: list = field(default_factory=list)
    truncated_bytes: int = 0
    corrupt_records: int = 0

    def merge(self, other: "ReplayReport") -> None:
        self.records.extend(other.records)
        self.truncated_bytes += other.truncated_bytes
        self.corrupt_records += other.corrupt_records


class WriteAheadLog:
    """One append-only checksummed JSONL file."""

    def __init__(self, path: Path | str, *, name: str, fsync_every: int = 8):
        self.path = Path(path)
        self.name = name
        self.fsync_every = max(1, int(fsync_every))
        self.records = 0
        self.appends = 0
        self.fsyncs = 0
        self._handle: Optional[IO[bytes]] = None
        self._pending = 0

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _ensure_handle(self) -> IO[bytes]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, record_type: str, data: dict, *, sync: bool = False) -> None:
        """Append one record; with ``sync=True`` it is durable on return.

        Raises :class:`WalWriteError` (wrapping ``OSError`` or an injected
        fault) when the record could NOT be made durable — the caller must
        not acknowledge the operation.
        """
        lsn = self.records + 1
        line = _encode({"lsn": lsn, "type": record_type, "data": data})
        try:
            faults.maybe_fire(
                "wal.append", log=self.name, lsn=lsn, records=self.records
            )
            handle = self._ensure_handle()
            handle.write(line)
            self._pending += 1
            if sync or self._pending >= self.fsync_every:
                self._sync(handle)
        except (OSError, faults.InjectedFault) as error:
            raise WalWriteError(
                f"write-ahead log {self.name!r} append failed: {error}"
            ) from error
        self.records = lsn
        self.appends += 1

    def _sync(self, handle: IO[bytes]) -> None:
        faults.maybe_fire("wal.fsync", log=self.name, records=self.records)
        handle.flush()
        os.fsync(handle.fileno())
        self._pending = 0
        self.fsyncs += 1

    def flush(self) -> None:
        """Force any batched appends to disk."""
        if self._handle is not None and self._pending:
            try:
                self._sync(self._handle)
            except (OSError, faults.InjectedFault) as error:
                raise WalWriteError(
                    f"write-ahead log {self.name!r} fsync failed: {error}"
                ) from error

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.flush()
            except WalWriteError:
                pass
            self._handle.close()
            self._handle = None
            self._pending = 0

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def replay(self) -> ReplayReport:
        """Read every intact record, truncating the file at the first bad one.

        A record is bad when its line is torn (no trailing newline), fails
        to parse, or fails its checksum.  Everything from the first bad
        record onward is dropped — later records may depend on earlier
        ones, so recovery never skips over a hole.
        """
        self.close()
        report = ReplayReport()
        if not self.path.exists():
            self.records = 0
            return report
        raw = self.path.read_bytes()
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                report.corrupt_records += 1  # torn final write
                break
            record = _decode(raw[offset:newline])
            if record is None:
                report.corrupt_records += 1
                break
            report.records.append(record)
            offset = newline + 1
        if offset < len(raw):
            report.truncated_bytes = len(raw) - offset
            with open(self.path, "r+b") as handle:
                handle.truncate(offset)
                os.fsync(handle.fileno())
        self.records = len(report.records)
        return report

    # ------------------------------------------------------------------ #
    # Rewriting (compaction)
    # ------------------------------------------------------------------ #
    def rewrite(self, entries: Iterable[tuple[str, dict]]) -> None:
        """Atomically replace the log's contents with ``entries``.

        Written to a temp file, fsynced, then ``os.replace``d over the log,
        so a crash mid-rewrite leaves the previous contents intact.
        """
        self.close()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        count = 0
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                for record_type, data in entries:
                    count += 1
                    handle.write(
                        _encode({"lsn": count, "type": record_type, "data": data})
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self._sync_directory()
        except OSError as error:
            tmp.unlink(missing_ok=True)
            raise WalWriteError(
                f"write-ahead log {self.name!r} rewrite failed: {error}"
            ) from error
        self.records = count

    def truncate(self) -> None:
        """Atomically empty the log."""
        self.rewrite(())

    def _sync_directory(self) -> None:
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def info(self) -> dict:
        return {
            "path": str(self.path),
            "records": self.records,
            "appends": self.appends,
            "fsyncs": self.fsyncs,
        }


class SnapshotLog:
    """A snapshot + tail pair for one last-wins record stream.

    Appends go to the tail WAL; compaction rewrites the snapshot from the
    caller's live state and truncates the tail.  Replay yields snapshot
    records first, then tail records — callers apply them in order with
    last-wins semantics, which makes replay idempotent across a crash at
    any point of the compaction sequence.
    """

    def __init__(self, directory: Path | str, name: str, *, fsync_every: int = 8):
        directory = Path(directory)
        self.name = name
        self.snapshot = WriteAheadLog(
            directory / f"{name}.snapshot.jsonl", name=f"{name}.snapshot"
        )
        self.tail = WriteAheadLog(
            directory / f"{name}.wal", name=name, fsync_every=fsync_every
        )

    def append(self, record_type: str, data: dict, *, sync: bool = False) -> None:
        self.tail.append(record_type, data, sync=sync)

    @property
    def tail_records(self) -> int:
        return self.tail.records

    def replay(self) -> ReplayReport:
        report = self.snapshot.replay()
        report.merge(self.tail.replay())
        return report

    def compact(self, entries: Iterable[tuple[str, dict]]) -> None:
        """Rewrite the snapshot from live state, then empty the tail.

        Crash safety: the snapshot replace is atomic, and a crash between
        the two steps merely leaves a tail whose records are already in
        the snapshot — harmless under last-wins replay.
        """
        self.snapshot.rewrite(entries)
        self.tail.truncate()

    def flush(self) -> None:
        self.tail.flush()

    def close(self) -> None:
        self.snapshot.close()
        self.tail.close()

    def info(self) -> dict:
        return {
            "snapshot_records": self.snapshot.records,
            "tail_records": self.tail.records,
            "appends": self.tail.appends,
            "fsyncs": self.tail.fsyncs,
        }
