"""Durable state for the fair-clique service: WAL, checkpoints, recovery.

Three layers, lowest first:

* :mod:`repro.durability.wal` — append-only checksummed JSONL logs with
  torn-tail repair and snapshot+tail compaction;
* :mod:`repro.durability.checkpoint` — atomic per-solve checkpoint files
  the parallel executor resumes from after a crash;
* :mod:`repro.durability.store` — the data-directory composition the
  service boots from (graphs, cached results, checkpoints).

The package depends only on the stdlib and the fault-injection seams; it
never imports the service or graph tiers.
"""

from .checkpoint import CheckpointHandle, CheckpointStore, CheckpointWriteError
from .store import DurableStateStore, RecoveryReport
from .wal import (
    DurabilityError,
    ReplayReport,
    SnapshotLog,
    WalError,
    WalWriteError,
    WriteAheadLog,
)

__all__ = [
    "CheckpointHandle",
    "CheckpointStore",
    "CheckpointWriteError",
    "DurabilityError",
    "DurableStateStore",
    "RecoveryReport",
    "ReplayReport",
    "SnapshotLog",
    "WalError",
    "WalWriteError",
    "WriteAheadLog",
]
