"""The durable state store backing a service data directory.

Layout of ``--data-dir``::

    graphs.snapshot.jsonl   one graph.put record per live graph (compacted)
    graphs.wal              graph.put tail since the last compaction
    results.snapshot.jsonl  result.put records kept across compaction
    results.wal             result.put tail (fsync-batched)
    checkpoints/*.ckpt      one checkpoint per in-flight parallel solve

The store deliberately speaks *opaque JSON dicts* — it never imports the
service wire layer or the graph types, so ``repro.durability`` sits below
every other tier and can be reused by any caller that wants last-wins
durable maps.  The service converts graphs with ``graph_to_wire`` /
``graph_from_wire`` on its side of the boundary.

Write policy:

* graph records are appended ``sync=True`` — the upload ack implies the
  graph survives a crash;
* result records are fsync-batched — a cached solve result is
  reproducible, so losing the last batch only costs a re-solve.

Compaction triggers automatically once a tail exceeds ``compact_every``
records; the store keeps an in-memory last-wins mirror of each stream so
compaction needs no cooperation from the caller.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .checkpoint import CheckpointHandle, CheckpointStore
from .wal import SnapshotLog, WalError, WalWriteError

__all__ = ["RecoveryReport", "DurableStateStore"]


@dataclass
class RecoveryReport:
    """Everything a warm restart replayed out of a data directory."""

    graphs: "OrderedDict[str, dict]" = field(default_factory=OrderedDict)
    #: Per-graph ordered delta chains (``graph.delta`` records since the
    #: graph's base upload); the caller replays them on top of the base.
    deltas: "OrderedDict[str, list]" = field(default_factory=OrderedDict)
    results: list = field(default_factory=list)
    checkpoints: int = 0
    stats: dict = field(default_factory=dict)


def _result_key(entry: dict) -> tuple:
    return (entry.get("graph"), entry.get("version"), repr(entry.get("query")))


class DurableStateStore:
    """WAL-backed graphs + results + checkpoints under one directory."""

    def __init__(
        self,
        data_dir: Path | str,
        *,
        fsync_every: int = 8,
        compact_every: int = 256,
        keep_results: int = 1024,
    ):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.compact_every = max(1, int(compact_every))
        self.keep_results = max(1, int(keep_results))
        self.graphs_log = SnapshotLog(
            self.data_dir, "graphs", fsync_every=fsync_every
        )
        self.results_log = SnapshotLog(
            self.data_dir, "results", fsync_every=fsync_every
        )
        self.checkpoints = CheckpointStore(self.data_dir / "checkpoints")
        self.compactions = 0
        self.compaction_failures = 0
        # Last-wins mirrors of each stream, populated by recover() and kept
        # current by the record_* methods; compaction rewrites from these.
        self._graphs: "OrderedDict[str, dict]" = OrderedDict()
        self._results: "OrderedDict[tuple, dict]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def recover(self) -> RecoveryReport:
        """Replay both logs (repairing torn tails) and rebuild the mirrors."""
        graph_report = self.graphs_log.replay()
        result_report = self.results_log.replay()
        self._graphs.clear()
        self._results.clear()
        for record in graph_report.records:
            data = record.get("data") or {}
            graph_id = data.get("id")
            if not isinstance(graph_id, str):
                continue
            record_type = record.get("type")
            if record_type == "graph.put":
                # A fresh upload resets the id's delta chain: the payload is
                # the new base (compaction re-emits base + chain in one put).
                self._graphs[graph_id] = data
                self._graphs.move_to_end(graph_id)
            elif record_type == "graph.delta":
                entry = self._graphs.get(graph_id)
                if entry is None:
                    continue  # orphan delta (its base was dropped)
                entry.setdefault("deltas", []).append(data.get("delta") or {})
        for record in result_report.records:
            if record.get("type") != "result.put":
                continue
            data = record.get("data") or {}
            self._results[_result_key(data)] = data
            self._results.move_to_end(_result_key(data))
        self._trim_results()
        return RecoveryReport(
            graphs=OrderedDict(
                (graph_id, data.get("graph", {}))
                for graph_id, data in self._graphs.items()
            ),
            deltas=OrderedDict(
                (graph_id, list(data.get("deltas", ())))
                for graph_id, data in self._graphs.items()
                if data.get("deltas")
            ),
            results=list(self._results.values()),
            checkpoints=self.checkpoints.count(),
            stats={
                "graph_records": len(graph_report.records),
                "result_records": len(result_report.records),
                "truncated_bytes": (
                    graph_report.truncated_bytes + result_report.truncated_bytes
                ),
                "corrupt_records": (
                    graph_report.corrupt_records + result_report.corrupt_records
                ),
            },
        )

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def record_graph(self, graph_id: str, payload: dict) -> None:
        """Durably record a graph upload; raises :class:`WalWriteError`.

        Synced before returning: once this method succeeds the service may
        acknowledge the upload.
        """
        data = {"id": graph_id, "graph": payload}
        self.graphs_log.append("graph.put", data, sync=True)
        self._graphs[graph_id] = data
        self._graphs.move_to_end(graph_id)
        self._maybe_compact(self.graphs_log, self._graph_entries)

    def record_graph_delta(self, graph_id: str, delta_payload: dict) -> None:
        """Durably record one mutation batch against a served graph.

        Synced before returning, like :meth:`record_graph`: the mutation ack
        implies a restart replays base + chain to the post-batch version.
        Because the append is a single record, a crash mid-call leaves the
        WAL either without the batch (replay lands pre-batch) or with it in
        full (replay lands post-batch) — never a torn intermediate.  Deltas
        for an id with no recorded base are dropped on recovery, so this
        method refuses them up front.
        """
        entry = self._graphs.get(graph_id)
        if entry is None:
            raise KeyError(f"no recorded graph {graph_id!r} to apply a delta to")
        self.graphs_log.append(
            "graph.delta", {"id": graph_id, "delta": delta_payload}, sync=True
        )
        entry.setdefault("deltas", []).append(delta_payload)
        self._maybe_compact(self.graphs_log, self._graph_entries)

    def record_result(
        self, graph_id: str, version: str, query: dict, report: dict
    ) -> None:
        """Record a cacheable solve result (fsync-batched)."""
        data = {
            "graph": graph_id,
            "version": version,
            "query": query,
            "report": report,
        }
        self.results_log.append("result.put", data)
        self._results[_result_key(data)] = data
        self._results.move_to_end(_result_key(data))
        self._trim_results()
        self._maybe_compact(self.results_log, self._result_entries)

    def checkpoint_handle(self, key: str) -> CheckpointHandle:
        return self.checkpoints.handle(key)

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def _graph_entries(self):
        return [("graph.put", data) for data in self._graphs.values()]

    def _result_entries(self):
        return [("result.put", data) for data in self._results.values()]

    def _trim_results(self) -> None:
        while len(self._results) > self.keep_results:
            self._results.popitem(last=False)

    def _maybe_compact(self, log: SnapshotLog, entries) -> None:
        if log.tail_records < self.compact_every:
            return
        try:
            log.compact(entries())
            self.compactions += 1
        except WalError:
            # The append that triggered us already succeeded, and the old
            # snapshot + full tail remain replayable — compaction failure
            # costs disk space, not durability.
            self.compaction_failures += 1

    # ------------------------------------------------------------------ #
    # Lifecycle / telemetry
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        self.graphs_log.flush()
        self.results_log.flush()

    def close(self) -> None:
        try:
            self.results_log.flush()
        except WalWriteError:  # pragma: no cover - best-effort on shutdown
            pass
        self.graphs_log.close()
        self.results_log.close()

    def info(self) -> dict:
        return {
            "data_dir": str(self.data_dir),
            "graphs": self.graphs_log.info(),
            "results": self.results_log.info(),
            "checkpoints": self.checkpoints.count(),
            "compactions": self.compactions,
            "compaction_failures": self.compaction_failures,
        }
