"""Atomic, checksummed checkpoint files for long-running solves.

A checkpoint is one JSON document per ``(graph, version, query)`` triple,
written atomically (tmp file + ``os.replace``) so a crash mid-write leaves
either the previous checkpoint or none — never a half-written file.  The
same canonical-JSON + crc32 scheme as the WAL guards the contents; a
checkpoint that fails its checksum loads as ``None``, which callers treat
as "start from scratch" (checkpoints are an optimisation, never a
correctness dependency).

The ``checkpoint.write`` fault seam fires before the write so the chaos
harness can inject failures; they surface as :class:`CheckpointWriteError`
and the executor swallows them — losing a checkpoint must never kill the
solve it was protecting.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import Optional

from repro.resilience import faults

from .wal import DurabilityError

__all__ = ["CheckpointWriteError", "CheckpointHandle", "CheckpointStore"]


class CheckpointWriteError(DurabilityError):
    """A checkpoint could not be persisted (disk pressure or injected)."""


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class CheckpointHandle:
    """Save/load/discard for one solve's checkpoint file."""

    def __init__(self, path: Path):
        self.path = Path(path)

    def save(self, state: dict) -> None:
        body = _canonical(state)
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        document = _canonical({**state, "crc": crc})
        tmp = self.path.with_suffix(".tmp")
        try:
            faults.maybe_fire("checkpoint.write", path=self.path.name)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(document)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except (OSError, faults.InjectedFault) as error:
            tmp.unlink(missing_ok=True)
            raise CheckpointWriteError(
                f"checkpoint {self.path.name!r} write failed: {error}"
            ) from error

    def load(self) -> Optional[dict]:
        """The persisted state, or ``None`` when absent or corrupt."""
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict) or "crc" not in record:
            return None
        stored = record.pop("crc")
        if stored != (zlib.crc32(_canonical(record).encode("utf-8")) & 0xFFFFFFFF):
            return None
        return record

    def discard(self) -> None:
        try:
            self.path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


class CheckpointStore:
    """The checkpoint directory inside a service data dir."""

    def __init__(self, directory: Path | str):
        self.directory = Path(directory)

    def handle(self, key: str) -> CheckpointHandle:
        """The handle for an opaque solve identity string.

        The filename is a digest of the key, so arbitrary graph ids and
        query encodings never have to be filesystem-safe.
        """
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return CheckpointHandle(self.directory / f"{digest}.ckpt")

    def count(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for entry in self.directory.glob("*.ckpt"))
