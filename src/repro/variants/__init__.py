"""Fair clique model variants: weak, strong, and multi-attribute weak models."""

from repro.variants.multi_attribute import (
    MultiAttributeSearchResult,
    brute_force_maximum_multi_weak_fair_clique,
    find_maximum_multi_weak_fair_clique,
    greedy_multi_weak_fair_clique,
    is_multi_attribute_weak_fair_clique,
)
from repro.variants.weak_strong import (
    brute_force_maximum_weak_fair_clique,
    find_maximum_strong_fair_clique,
    find_maximum_weak_fair_clique,
    is_strong_fair_clique,
    is_weak_fair_clique,
    model_comparison,
)

__all__ = [
    "MultiAttributeSearchResult",
    "brute_force_maximum_multi_weak_fair_clique",
    "find_maximum_multi_weak_fair_clique",
    "greedy_multi_weak_fair_clique",
    "is_multi_attribute_weak_fair_clique",
    "brute_force_maximum_weak_fair_clique",
    "find_maximum_strong_fair_clique",
    "find_maximum_weak_fair_clique",
    "is_strong_fair_clique",
    "is_weak_fair_clique",
    "model_comparison",
]
