"""Weak and strong fair clique models (the predecessors of the relative model).

The paper's related work traces the fair-clique line back to two earlier
models on binary-attributed graphs:

* a **weak fair clique** requires at least ``k`` vertices of *each* attribute
  (no cap on the imbalance);
* a **strong fair clique** additionally requires the two counts to be exactly
  equal.

Both are limiting cases of the relative fair clique this package is built
around: the weak model is the relative model with an unbounded ``delta`` and
the strong model is the relative model with ``delta = 0`` — which is exactly
how :class:`repro.models.WeakFairness` and :class:`repro.models.StrongFairness`
are defined in the pluggable model layer.  The functions here are thin
wrappers over that machinery (via :func:`find_maximum_fair_clique` and the
mapped delta), so downstream users can compare the three models on the same
graph (see ``examples/fairness_model_comparison.py``).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.baselines.bron_kerbosch import enumerate_maximal_cliques
from repro.graph.attributed_graph import AttributedGraph, Vertex
from repro.graph.validation import validate_parameters
from repro.search.maxrfc import find_maximum_fair_clique
from repro.search.result import SearchResult
from repro.search.verification import fairness_satisfied


def _unbounded_delta(graph: AttributedGraph) -> int:
    """A delta value no feasible clique can exceed (the vertex count)."""
    return max(graph.num_vertices, 1)


def is_weak_fair_clique(graph: AttributedGraph, vertices: Iterable[Vertex], k: int) -> bool:
    """Return True if ``vertices`` form a clique with >= k members of each attribute."""
    members = list(dict.fromkeys(vertices))
    return graph.is_clique(members) and fairness_satisfied(
        graph, members, k, _unbounded_delta(graph)
    )


def is_strong_fair_clique(graph: AttributedGraph, vertices: Iterable[Vertex], k: int) -> bool:
    """Return True if ``vertices`` form a clique with equal attribute counts, each >= k."""
    members = list(dict.fromkeys(vertices))
    return graph.is_clique(members) and fairness_satisfied(graph, members, k, 0)


def find_maximum_weak_fair_clique(
    graph: AttributedGraph,
    k: int,
    **search_options,
) -> SearchResult:
    """Find a maximum weak fair clique (relative model with unbounded delta).

    Extra keyword arguments are forwarded to
    :func:`repro.search.maxrfc.find_maximum_fair_clique`.
    """
    validate_parameters(k, 0)
    result = find_maximum_fair_clique(graph, k, _unbounded_delta(graph), **search_options)
    result.algorithm = f"MaxWeakFC[{result.algorithm}]"
    return result


def find_maximum_strong_fair_clique(
    graph: AttributedGraph,
    k: int,
    **search_options,
) -> SearchResult:
    """Find a maximum strong fair clique (relative model with ``delta = 0``)."""
    validate_parameters(k, 0)
    result = find_maximum_fair_clique(graph, k, 0, **search_options)
    result.algorithm = f"MaxStrongFC[{result.algorithm}]"
    return result


def brute_force_maximum_weak_fair_clique(graph: AttributedGraph, k: int) -> frozenset:
    """Exhaustive oracle for the weak model (used by tests).

    A maximal clique is itself the best weak-fair subset of its vertex set
    (dropping vertices can only lower attribute counts), so the optimum is the
    largest maximal clique whose attribute counts all reach ``k``.
    """
    validate_parameters(k, 0)
    if len(graph.attribute_values()) != 2:
        return frozenset()
    best: frozenset = frozenset()
    for clique in enumerate_maximal_cliques(graph):
        histogram = graph.attribute_histogram(clique)
        if len(clique) > len(best) and all(
            histogram.get(value, 0) >= k for value in graph.attribute_values()
        ):
            best = clique
    return best


def model_comparison(
    graph: AttributedGraph,
    k: int,
    delta: int,
    **search_options,
) -> dict[str, SearchResult]:
    """Solve the weak, relative, and strong models on the same graph.

    Returns a mapping from model name to its :class:`SearchResult`; by
    construction ``strong <= relative <= weak`` in clique size.
    """
    validate_parameters(k, delta)
    return {
        "weak": find_maximum_weak_fair_clique(graph, k, **search_options),
        "relative": find_maximum_fair_clique(graph, k, delta, **search_options),
        "strong": find_maximum_strong_fair_clique(graph, k, **search_options),
    }
