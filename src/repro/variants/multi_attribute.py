"""Weak fair cliques over graphs with more than two attribute values.

The paper (and this package's core) restricts the relative fair clique model
to binary attributes, but the weak fairness condition — *every* attribute
value appears at least ``k`` times — generalises naturally to an arbitrary
attribute domain, and the related fair-clique literature studies exactly that
generalisation.  Since the :class:`~repro.models.base.MultiWeakFairness`
model plugged the generalisation into the shared solver stack, this module is
a thin compatibility layer:

* :func:`is_multi_attribute_weak_fair_clique` — verification for any number of
  attribute values;
* :func:`brute_force_maximum_multi_weak_fair_clique` — an exhaustive oracle
  built on Bron–Kerbosch (a maximal clique is its own best weak-fair subset);
* :func:`find_maximum_multi_weak_fair_clique` — wrapper over the unified
  :class:`~repro.search.maxrfc.MaxRFC` solver with the ``multi_weak`` model
  (the historic dict-only ``MultiAttributeWeakFairCliqueSearch`` class is
  retired: the kernel branch-and-bound, the reduction pipeline, and the
  parallel executor all speak the model natively now);
* :func:`greedy_multi_weak_fair_clique` — a linear-time greedy in the spirit
  of ``DegHeur`` that cycles through the attribute values round-robin; it
  backs the ``(multi_weak, heuristic)`` engine pair and the exact solver's
  incumbent seed.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.baselines.bron_kerbosch import enumerate_maximal_cliques
from repro.exceptions import InvalidParameterError
from repro.graph.attributed_graph import AttributedGraph, Vertex
from repro.search.statistics import SearchStats


def _validate_k(k: int) -> None:
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")


def is_multi_attribute_weak_fair_clique(
    graph: AttributedGraph,
    vertices: Iterable[Vertex],
    k: int,
) -> bool:
    """Return True if ``vertices`` form a clique with >= k members of every attribute value."""
    _validate_k(k)
    members = list(dict.fromkeys(vertices))
    if not graph.is_clique(members):
        return False
    histogram = graph.attribute_histogram(members)
    return all(histogram.get(value, 0) >= k for value in graph.attribute_values())


def brute_force_maximum_multi_weak_fair_clique(
    graph: AttributedGraph,
    k: int,
) -> frozenset:
    """Exhaustive oracle: largest maximal clique covering every attribute >= k times."""
    _validate_k(k)
    values = graph.attribute_values()
    if not values:
        return frozenset()
    best: frozenset = frozenset()
    for clique in enumerate_maximal_cliques(graph):
        if len(clique) <= len(best):
            continue
        histogram = graph.attribute_histogram(clique)
        if all(histogram.get(value, 0) >= k for value in values):
            best = clique
    return best


@dataclass
class MultiAttributeSearchResult:
    """Result of the multi-attribute weak fair clique search."""

    clique: frozenset
    k: int
    stats: SearchStats = field(default_factory=SearchStats)
    optimal: bool = True

    @property
    def size(self) -> int:
        """Number of vertices in the returned clique."""
        return len(self.clique)

    @property
    def found(self) -> bool:
        """True when a weak fair clique satisfying ``k`` exists."""
        return bool(self.clique)


def find_maximum_multi_weak_fair_clique(
    graph: AttributedGraph,
    k: int,
    time_limit: float | None = None,
    use_kernel: bool = True,
) -> MultiAttributeSearchResult:
    """Solve the multi-attribute weak model through the unified solver stack.

    Runs :class:`~repro.search.maxrfc.MaxRFC` with a
    :class:`~repro.models.base.MultiWeakFairness` model — model-sound
    reduction (the d-ary colorful core), the attribute-free bound stack, the
    round-robin greedy seed, and the kernel branch-and-bound by default
    (``use_kernel=False`` selects the dict reference path, result-identical).
    """
    _validate_k(k)
    from repro.models.base import MultiWeakFairness
    from repro.search.maxrfc import MaxRFC, build_search_config

    config = build_search_config(time_limit=time_limit, use_kernel=use_kernel)
    result = MaxRFC(config).solve_model(graph, MultiWeakFairness(k))
    return MultiAttributeSearchResult(
        clique=result.clique, k=k, stats=result.stats, optimal=result.optimal,
    )


def greedy_multi_weak_fair_clique(
    graph: AttributedGraph,
    k: int,
    restarts: int = 1,
) -> frozenset:
    """Round-robin greedy heuristic for the multi-attribute weak model.

    Starting from a high-degree vertex, repeatedly add the highest-degree
    candidate of the attribute value currently least represented in the clique
    (falling back to any candidate when that value has none left).  With
    ``restarts > 1`` the growth is retried from that many top-degree start
    vertices (still linear time per restart, mirroring the binary ``DegHeur``
    restarts) and the largest fair clique wins.  Returns an empty frozenset
    when no attempt satisfies the weak fairness condition.
    """
    _validate_k(k)
    if graph.num_vertices == 0:
        return frozenset()
    values = graph.attribute_values()
    # nlargest keeps start selection O(n log restarts) — the seed path runs
    # on every multi_weak exact solve, so a full sort would be wasted work.
    starts = heapq.nlargest(
        max(1, restarts), graph.vertices(),
        key=lambda v: (graph.degree(v), str(v)),
    )
    best: frozenset = frozenset()
    for start in starts:
        clique: set[Vertex] = {start}
        candidates = set(graph.neighbors(start))
        counts = {value: 0 for value in values}
        counts[graph.attribute(start)] += 1
        while candidates:
            needy = min(values, key=lambda value: counts[value])
            pool = [v for v in candidates if graph.attribute(v) == needy] or list(candidates)
            vertex = max(pool, key=lambda v: (graph.degree(v), str(v)))
            clique.add(vertex)
            counts[graph.attribute(vertex)] += 1
            candidates &= graph.neighbors(vertex)
        if len(clique) > len(best) and all(counts[value] >= k for value in values):
            best = frozenset(clique)
    return best
