"""Weak fair cliques over graphs with more than two attribute values.

The paper (and this package's core) restricts the relative fair clique model
to binary attributes, but the weak fairness condition — *every* attribute
value appears at least ``k`` times — generalises naturally to an arbitrary
attribute domain, and the related fair-clique literature studies exactly that
generalisation.  This module provides that extension as a self-contained
layer:

* :func:`is_multi_attribute_weak_fair_clique` — verification for any number of
  attribute values;
* :func:`brute_force_maximum_multi_weak_fair_clique` — an exhaustive oracle
  built on Bron–Kerbosch (a maximal clique is its own best weak-fair subset);
* :class:`MultiAttributeWeakFairCliqueSearch` — a branch-and-bound solver with
  the attribute-feasibility, size/incumbent, and color-bound prunings of the
  binary solver, but none of the binary-specific colorful reductions;
* :func:`greedy_multi_weak_fair_clique` — a linear-time greedy in the spirit
  of ``DegHeur`` that cycles through the attribute values round-robin.

The binary machinery remains the fast path; this layer exists so downstream
users with, say, three departments or four seniority bands are not forced to
collapse their attribute into two classes.
"""

from __future__ import annotations

import sys
import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.baselines.bron_kerbosch import enumerate_maximal_cliques
from repro.coloring.greedy import greedy_coloring
from repro.exceptions import InvalidParameterError
from repro.graph.attributed_graph import AttributedGraph, Vertex
from repro.graph.components import connected_components
from repro.search.statistics import SearchStats


def _validate_k(k: int) -> None:
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")


def is_multi_attribute_weak_fair_clique(
    graph: AttributedGraph,
    vertices: Iterable[Vertex],
    k: int,
) -> bool:
    """Return True if ``vertices`` form a clique with >= k members of every attribute value."""
    _validate_k(k)
    members = list(dict.fromkeys(vertices))
    if not graph.is_clique(members):
        return False
    histogram = graph.attribute_histogram(members)
    return all(histogram.get(value, 0) >= k for value in graph.attribute_values())


def brute_force_maximum_multi_weak_fair_clique(
    graph: AttributedGraph,
    k: int,
) -> frozenset:
    """Exhaustive oracle: largest maximal clique covering every attribute >= k times."""
    _validate_k(k)
    values = graph.attribute_values()
    if not values:
        return frozenset()
    best: frozenset = frozenset()
    for clique in enumerate_maximal_cliques(graph):
        if len(clique) <= len(best):
            continue
        histogram = graph.attribute_histogram(clique)
        if all(histogram.get(value, 0) >= k for value in values):
            best = clique
    return best


@dataclass
class MultiAttributeSearchResult:
    """Result of the multi-attribute weak fair clique search."""

    clique: frozenset
    k: int
    stats: SearchStats = field(default_factory=SearchStats)
    optimal: bool = True

    @property
    def size(self) -> int:
        """Number of vertices in the returned clique."""
        return len(self.clique)

    @property
    def found(self) -> bool:
        """True when a weak fair clique satisfying ``k`` exists."""
        return bool(self.clique)


class MultiAttributeWeakFairCliqueSearch:
    """Branch-and-bound search for the maximum multi-attribute weak fair clique.

    The solver enumerates cliques in increasing degeneracy-order fashion
    (every clique generated exactly once) and prunes with:

    * the size/incumbent argument ``|R| + |C| >= max(t*k, |best|+1)`` where
      ``t`` is the number of attribute values;
    * per-attribute feasibility ``cnt_R(x) + cnt_C(x) >= k`` for every value;
    * the color bound: a clique cannot exceed the number of colors of a proper
      coloring of ``R ∪ C``.
    """

    def __init__(self, time_limit: float | None = None) -> None:
        self.time_limit = time_limit

    def solve(self, graph: AttributedGraph, k: int) -> MultiAttributeSearchResult:
        """Return a maximum weak fair clique of ``graph`` for threshold ``k``."""
        _validate_k(k)
        stats = SearchStats()
        values = graph.attribute_values()
        best: frozenset = frozenset()
        if not values:
            return MultiAttributeSearchResult(best, k, stats)
        minimum_size = len(values) * k
        deadline = None if self.time_limit is None else time.monotonic() + self.time_limit
        started = time.monotonic()
        timed_out = False
        sys.setrecursionlimit(max(sys.getrecursionlimit(), graph.num_vertices + 1000))
        coloring = greedy_coloring(graph)
        try:
            for component in connected_components(graph):
                if len(component) < max(minimum_size, len(best) + 1):
                    continue
                histogram = graph.attribute_histogram(component)
                if any(histogram.get(value, 0) < k for value in values):
                    continue
                ordered = sorted(
                    component, key=lambda v: (coloring[v], graph.degree(v), str(v))
                )
                best = self._branch(graph, frozenset(), ordered, k, values,
                                    minimum_size, best, stats, deadline, coloring)
        except _Timeout:
            timed_out = True
        stats.search_seconds = time.monotonic() - started
        stats.timed_out = timed_out
        return MultiAttributeSearchResult(best, k, stats, optimal=not timed_out)

    def _branch(
        self,
        graph: AttributedGraph,
        clique: frozenset,
        candidates: list[Vertex],
        k: int,
        values: tuple[str, ...],
        minimum_size: int,
        best: frozenset,
        stats: SearchStats,
        deadline: float | None,
        coloring: dict,
    ) -> frozenset:
        stats.branches_explored += 1
        if deadline is not None and stats.branches_explored % 128 == 0:
            if time.monotonic() > deadline:
                raise _Timeout()

        if len(clique) > len(best):
            histogram = graph.attribute_histogram(clique)
            if all(histogram.get(value, 0) >= k for value in values):
                best = clique
                stats.solutions_found += 1
        if not candidates:
            return best

        target = max(minimum_size, len(best) + 1)
        if len(clique) + len(candidates) < target:
            stats.pruned_by_size += 1
            return best
        scope_histogram = graph.attribute_histogram(list(clique) + candidates)
        if any(scope_histogram.get(value, 0) < k for value in values):
            stats.pruned_by_attribute_feasibility += 1
            return best
        distinct_colors = {coloring[v] for v in candidates} | {coloring[v] for v in clique}
        if len(distinct_colors) < target:
            stats.pruned_by_bound += 1
            return best

        for index, vertex in enumerate(candidates):
            if len(clique) + (len(candidates) - index) < max(minimum_size, len(best) + 1):
                stats.pruned_by_incumbent += 1
                break
            neighbors = graph.neighbors(vertex)
            next_candidates = [v for v in candidates[index + 1:] if v in neighbors]
            best = self._branch(graph, clique | {vertex}, next_candidates, k, values,
                                minimum_size, best, stats, deadline, coloring)
        return best


class _Timeout(Exception):
    """Internal signal used to stop the multi-attribute search."""


def find_maximum_multi_weak_fair_clique(
    graph: AttributedGraph,
    k: int,
    time_limit: float | None = None,
) -> MultiAttributeSearchResult:
    """Convenience wrapper around :class:`MultiAttributeWeakFairCliqueSearch`."""
    return MultiAttributeWeakFairCliqueSearch(time_limit=time_limit).solve(graph, k)


def greedy_multi_weak_fair_clique(graph: AttributedGraph, k: int) -> frozenset:
    """Round-robin greedy heuristic for the multi-attribute weak model.

    Starting from the highest-degree vertex, repeatedly add the highest-degree
    candidate of the attribute value currently least represented in the clique
    (falling back to any candidate when that value has none left).  Returns
    the grown clique if it satisfies the weak fairness condition, otherwise an
    empty frozenset.
    """
    _validate_k(k)
    if graph.num_vertices == 0:
        return frozenset()
    values = graph.attribute_values()
    start = max(graph.vertices(), key=lambda v: (graph.degree(v), str(v)))
    clique: set[Vertex] = {start}
    candidates = set(graph.neighbors(start))
    counts = {value: 0 for value in values}
    counts[graph.attribute(start)] += 1
    while candidates:
        needy = min(values, key=lambda value: counts[value])
        pool = [v for v in candidates if graph.attribute(v) == needy] or list(candidates)
        vertex = max(pool, key=lambda v: (graph.degree(v), str(v)))
        clique.add(vertex)
        counts[graph.attribute(vertex)] += 1
        candidates &= graph.neighbors(vertex)
    if all(counts[value] >= k for value in values):
        return frozenset(clique)
    return frozenset()
