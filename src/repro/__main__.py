"""Allow ``python -m repro ...`` to behave like the installed console script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
