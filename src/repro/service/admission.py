"""Admission control: bounded in-flight work, bounded queue, honest 429s.

The executor backend bounds *parallelism*; admission control bounds
*commitment*.  Without it, a burst beyond the worker count piles unbounded
futures into the executor queue and every caller sees timeouts.  With it,
at most ``max_in_flight`` queries execute, at most ``max_queue_depth`` wait,
and everyone beyond that gets an immediate ``429 Too Many Requests`` —
which a well-behaved client backs off on.

The controller lives on the event loop (single-threaded), so its counters
need no lock; the waiting itself is an ``asyncio`` semaphore.
"""

from __future__ import annotations

import asyncio

from repro.exceptions import InvalidParameterError


class ServiceOverloadedError(Exception):
    """Raised when both the in-flight slots and the wait queue are full."""


class AdmissionController:
    """An async gate: ``max_in_flight`` running, ``max_queue_depth`` waiting."""

    def __init__(self, max_in_flight: int = 8, max_queue_depth: int = 32) -> None:
        if max_in_flight < 1:
            raise InvalidParameterError(
                f"max_in_flight must be >= 1, got {max_in_flight!r}"
            )
        if max_queue_depth < 0:
            raise InvalidParameterError(
                f"max_queue_depth must be >= 0, got {max_queue_depth!r}"
            )
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self._semaphore = asyncio.Semaphore(max_in_flight)
        self.in_flight = 0
        self.queued = 0
        self.admitted_total = 0
        self.rejected_total = 0

    async def __aenter__(self) -> "AdmissionController":
        if self.in_flight >= self.max_in_flight and self.queued >= self.max_queue_depth:
            self.rejected_total += 1
            raise ServiceOverloadedError(
                f"at capacity: {self.in_flight} in flight, "
                f"{self.queued} queued (queue depth {self.max_queue_depth})"
            )
        self.queued += 1
        try:
            await self._semaphore.acquire()
        finally:
            self.queued -= 1
        self.in_flight += 1
        self.admitted_total += 1
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.in_flight -= 1
        self._semaphore.release()

    async def drain(self, poll_seconds: float = 0.02) -> None:
        """Wait until nothing is running or queued (graceful shutdown)."""
        while self.in_flight or self.queued:
            await asyncio.sleep(poll_seconds)

    def info(self) -> dict:
        """Plain-data snapshot for ``/metrics``."""
        return {
            "max_in_flight": self.max_in_flight,
            "max_queue_depth": self.max_queue_depth,
            "in_flight": self.in_flight,
            "queued": self.queued,
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
        }
