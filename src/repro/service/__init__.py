"""The fair-clique service tier: an async HTTP/JSON server over a session pool.

PR 5's session layer made one process fast — prepared graphs, warm caches,
streaming incumbents.  This package puts a network front door on it without
leaving the standard library:

* :class:`FairCliqueService` — the application: routes, a bounded LRU
  :class:`SessionRegistry` of warm sessions, a cross-request
  :class:`ResultCache`, admission control, per-tier quota clamping, and
  ``/metrics`` observability;
* :class:`FairCliqueServer` / :class:`ServerHandle` — asyncio lifecycle
  (bind, serve, graceful drain), optionally hosted on a background thread;
* :class:`ServiceClient` — the stdlib client returning the same
  ``SolveReport``/``Incumbent``/``QueryPlan`` objects the in-process API
  does;
* :class:`ExecutorBackend` — the pluggable execution substrate
  (worker threads today, multi-node dispatch later).

Quick start::

    from repro.datasets import load_dataset
    from repro.service import FairCliqueService, ServerHandle, ServiceClient

    service = FairCliqueService()
    service.add_graph("dblp", load_dataset("DBLP"))
    with ServerHandle.start(service) as handle:
        client = ServiceClient(handle.address)
        report = client.solve("dblp", FairCliqueQuery(model="relative", k=3, delta=1))

or from the command line: ``repro-fairclique serve --preload DBLP``.
"""

from repro.service.admission import AdmissionController, ServiceOverloadedError
from repro.service.app import SCHEMA, FairCliqueService, ServiceConfig
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.executor import ExecutorBackend, InlineBackend, ThreadPoolBackend
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.quotas import QuotaPolicy, QuotaTier, default_tiers
from repro.service.registry import SessionRegistry, UnknownGraphError
from repro.service.server import FairCliqueServer, ServerHandle

__all__ = [
    "SCHEMA",
    "FairCliqueService",
    "ServiceConfig",
    "FairCliqueServer",
    "ServerHandle",
    "ServiceClient",
    "ServiceError",
    "SessionRegistry",
    "UnknownGraphError",
    "ResultCache",
    "AdmissionController",
    "ServiceOverloadedError",
    "QuotaPolicy",
    "QuotaTier",
    "default_tiers",
    "ExecutorBackend",
    "ThreadPoolBackend",
    "InlineBackend",
    "LatencyHistogram",
    "ServiceMetrics",
]
