"""Server lifecycle: bind, serve, drain, stop — async and thread-hosted.

:class:`FairCliqueServer` owns the listening socket for one
:class:`~repro.service.app.FairCliqueService`:

* :meth:`start` binds and begins accepting;
* :meth:`serve_forever` blocks until :meth:`shutdown`;
* :meth:`shutdown` is the graceful path — stop accepting, let the service
  drain its in-flight solves, release sessions/executors.

:class:`ServerHandle` hosts the whole thing on a daemon thread for callers
that live outside asyncio — the benchmark driver, tests, and the CLI's
foreground loop all use it.
"""

from __future__ import annotations

import asyncio
import threading

from repro.service.app import FairCliqueService, ServiceConfig


class FairCliqueServer:
    """One listening socket in front of one service application."""

    def __init__(self, service: FairCliqueService) -> None:
        self.service = service
        self._server: asyncio.base_events.Server | None = None
        self._stopping: asyncio.Event | None = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` — bind any free port)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind ``config.host:config.port`` and start accepting."""
        config = self.service.config
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self.service.handle_connection, config.host, config.port
        )

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes the drain."""
        if self._server is None:
            await self.start()
        assert self._stopping is not None
        await self._stopping.wait()

    async def shutdown(self) -> None:
        """Graceful stop: close the listener, drain in-flight work, release."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.drain()
        if self._stopping is not None:
            self._stopping.set()


class ServerHandle:
    """A server hosted on a background thread with its own event loop.

    The synchronous face of the subsystem::

        handle = ServerHandle.start(service)
        ... drive it over HTTP on handle.port ...
        handle.stop()           # graceful: drains in-flight solves

    ``stop()`` is idempotent and joins the thread.
    """

    def __init__(self, server: FairCliqueServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @classmethod
    def start(cls, service: FairCliqueService, *,
              startup_timeout: float = 10.0) -> "ServerHandle":
        """Boot ``service`` on a fresh daemon thread; returns once bound."""
        server = FairCliqueServer(service)
        loop = asyncio.new_event_loop()
        bound = threading.Event()
        startup_error: list[BaseException] = []

        def run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(server.start())
            except BaseException as error:  # surfaced to the caller below
                startup_error.append(error)
                bound.set()
                return
            bound.set()
            loop.run_until_complete(server.serve_forever())
            loop.close()

        thread = threading.Thread(target=run, name="fairclique-server", daemon=True)
        thread.start()
        if not bound.wait(startup_timeout):
            raise RuntimeError("server did not bind within the startup timeout")
        if startup_error:
            thread.join()
            raise startup_error[0]
        return cls(server, loop, thread)

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        host = self.server.service.config.host
        return f"http://{host}:{self.port}"

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown from the hosting thread's outside (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        future.result(timeout)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
