"""Pluggable executor backends: where the service runs the actual solving.

The asyncio front-end must never block its event loop on a branch-and-bound
search, so every solve/enumeration/stream runs on an
:class:`ExecutorBackend` and the loop awaits the future.  The interface is
deliberately the ``concurrent.futures`` submit shape, which keeps the
front-end a thin ``asyncio.wrap_future`` away from any execution substrate:

* :class:`ThreadPoolBackend` — the default: a worker-thread pool in this
  process.  Sessions and their caches are shared (that is the point of the
  service tier), and the solver's own ``workers=N`` process sharding still
  applies *inside* a request.  This mirrors the front-end/executor split of
  cluster-submission pipelines — the front-end plans, a backend executes —
  so a multi-node dispatch backend can slot in later without touching the
  HTTP layer.
* :class:`InlineBackend` — runs the callable synchronously at submit time;
  deterministic and dependency-free, for tests and debugging.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor

from repro.exceptions import InvalidParameterError
from repro.resilience import faults


class ExecutorBackend:
    """The executor contract: submit work, get a ``concurrent.futures.Future``."""

    name = "base"

    def submit(self, fn, /, *args, **kwargs) -> Future:
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:
        """Release the backend's resources (idempotent)."""

    def info(self) -> dict:
        """Plain-data snapshot for ``/metrics``."""
        return {"backend": self.name}


class ThreadPoolBackend(ExecutorBackend):
    """The default backend: a bounded worker-thread pool in this process."""

    name = "thread_pool"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise InvalidParameterError(
                f"executor max_workers must be >= 1, got {max_workers!r}"
            )
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="fairclique-svc"
        )

    def submit(self, fn, /, *args, **kwargs) -> Future:
        faults.maybe_fire("backend.submit", backend=self.name)
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def info(self) -> dict:
        return {"backend": self.name, "max_workers": self.max_workers}


class InlineBackend(ExecutorBackend):
    """Run submissions synchronously; the deterministic test double.

    Note this *does* block the caller (and, in the server, the event loop)
    for the duration of the call — which is exactly why it is not the
    default and exists for tests.
    """

    name = "inline"

    def submit(self, fn, /, *args, **kwargs) -> Future:
        faults.maybe_fire("backend.submit", backend=self.name)
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as error:  # delivered through the future
            future.set_exception(error)
        return future
