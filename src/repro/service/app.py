"""The fair-clique service application: routes, handlers, production trim.

:class:`FairCliqueService` wires the subsystem together on top of the
session layer:

* a :class:`~repro.service.registry.SessionRegistry` keeps one warm
  :class:`~repro.api.FairCliqueSession` per served graph (bounded LRU);
* a :class:`~repro.service.cache.ResultCache` short-circuits repeated
  questions, keyed by ``(graph id, graph version, query)``;
* an :class:`~repro.service.admission.AdmissionController` bounds in-flight
  queries and answers honest 429s beyond the queue depth;
* a :class:`~repro.service.quotas.QuotaPolicy` clamps per-request budgets
  (``time_limit``, ``branch_limit``, ``workers``) by tier;
* an :class:`~repro.service.executor.ExecutorBackend` runs the solves off
  the event loop (worker threads by default, pluggable);
* :class:`~repro.service.metrics.ServiceMetrics` records per-endpoint
  latency histograms surfaced by ``/metrics``;
* a :class:`~repro.resilience.breaker.BreakerBoard` keeps a per-graph
  circuit breaker: graphs whose solves keep crashing fail fast with 503 +
  ``Retry-After`` until a timed half-open probe succeeds, and ``/healthz``
  reports ``degraded`` while any breaker is open.  A ``/solve`` request may
  opt into ``"allow_degraded": true`` to receive the linear-time heuristic
  answer (flagged ``degraded`` in the envelope) instead of a 500 when the
  exact engine is crashing.

Endpoints (JSON in, JSON out; streams are NDJSON or SSE)::

    GET  /healthz            liveness + drain state
    GET  /metrics            cache/admission/session/latency telemetry
    GET  /graphs             served graph ids
    GET  /graphs/{id}        one graph's size/attribute summary
    POST /graphs/{id}        upload a graph (wire.graph_to_wire shape)
    POST /graphs/{id}/mutations  apply a mutation batch (one version bump)
    POST /solve              {"graph", "query", "tier"?} -> SolveReport
    POST /explain            {"graph", "query", "tier"?} -> QueryPlan
    POST /stream             incumbent events as NDJSON lines / SSE
    POST /enumerate          maximal fair cliques as NDJSON lines

Graceful shutdown: :meth:`drain` flips new query traffic to 503, waits for
in-flight solves, then closes sessions and the backend.
"""

from __future__ import annotations

import asyncio
import functools
import math
import threading
import time
from dataclasses import dataclass, replace

import json

from repro.api.query import FairCliqueQuery
from repro.api.session import FairCliqueSession
from repro.durability import DurableStateStore, WalWriteError
from repro.exceptions import ReproError
from repro.resilience import SolveCrashedError, faults
from repro.resilience.breaker import BreakerBoard, CircuitOpenError
from repro.resilience.deadline import Deadline
from repro.service.admission import AdmissionController, ServiceOverloadedError
from repro.service.cache import ResultCache
from repro.service.executor import ExecutorBackend, ThreadPoolBackend
from repro.service.http import (
    HTTPError,
    HTTPRequest,
    read_request,
    send_response,
    start_streaming_response,
)
from repro.service.metrics import ServiceMetrics
from repro.service.quotas import QuotaPolicy
from repro.service.registry import SessionRegistry, UnknownGraphError
from repro.incremental.delta import GraphDelta, apply_ops
from repro.service.wire import (
    dumps,
    error_body,
    graph_from_wire,
    graph_to_wire,
    parse_json_body,
    parse_mutations_request,
    parse_query_request,
)

SCHEMA = "fairclique-service/v1"

#: Streamed solves publish at most this many undelivered events before the
#: producer thread blocks — a slow consumer applies backpressure instead of
#: growing an unbounded buffer.
STREAM_BUFFER_EVENTS = 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (all bounded, all observable)."""

    host: str = "127.0.0.1"
    port: int = 8710
    session_capacity: int = 8
    result_cache_capacity: int = 1024
    max_in_flight: int = 8
    queue_depth: int = 32
    executor_workers: int = 4
    default_tier: str = "standard"
    breaker_threshold: int = 5
    breaker_reset_seconds: float = 30.0
    #: Durable-state directory (WAL + checkpoints + persisted results).
    #: ``None`` keeps the pre-PR-8 behaviour: everything is in-memory and a
    #: restart starts empty.
    data_dir: str | None = None
    #: Batched-fsync interval of the results WAL (graph uploads always sync).
    wal_fsync_every: int = 8
    #: Tail records that trigger a snapshot+tail compaction pass.
    wal_compact_every: int = 256


class FairCliqueService:
    """The HTTP application object (transport-agnostic: takes stream pairs)."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        backend: ExecutorBackend | None = None,
        quotas: QuotaPolicy | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = SessionRegistry(self.config.session_capacity)
        self.result_cache = ResultCache(self.config.result_cache_capacity)
        self.admission = AdmissionController(
            self.config.max_in_flight, self.config.queue_depth
        )
        self.quotas = quotas or QuotaPolicy(default=self.config.default_tier)
        self.backend = backend or ThreadPoolBackend(self.config.executor_workers)
        self.metrics = ServiceMetrics()
        self.breakers = BreakerBoard(
            failure_threshold=self.config.breaker_threshold,
            reset_after=self.config.breaker_reset_seconds,
        )
        self.draining = False
        self._started = time.monotonic()
        #: The durable store behind ``--data-dir`` (None = in-memory only)
        #: and the stats of the warm restart that rebuilt this instance.
        self.durability: DurableStateStore | None = None
        self.recovery: dict | None = None
        if self.config.data_dir:
            self.durability = DurableStateStore(
                self.config.data_dir,
                fsync_every=self.config.wal_fsync_every,
                compact_every=self.config.wal_compact_every,
                keep_results=self.config.result_cache_capacity,
            )
            self.recovery = self._recover_state()

    # ------------------------------------------------------------------ #
    # Durable state (WAL-backed warm restart)
    # ------------------------------------------------------------------ #
    def _recover_state(self) -> dict:
        """Replay the data dir into the registry and result cache.

        Every record already passed its checksum (torn tails were truncated
        by the replay), so failures here are shape-level — a graph that no
        longer decodes, a result whose graph is gone or whose version
        differs from the rebuilt graph.  Those entries are *dropped and
        counted*, never fatal: recovery must always leave a serving
        instance.
        """
        report = self.durability.recover()
        graphs = results = dropped = deltas_replayed = 0
        for graph_id, payload in report.graphs.items():
            try:
                graph = graph_from_wire(payload)
            except (HTTPError, ReproError):
                dropped += 1
                continue
            # Replay the graph's mutation-batch chain on top of the base
            # upload.  graph_from_wire is deterministic, so versions line up
            # record by record; a chain break (corruption, or a replaced
            # base) stops the replay at the last good version — the chain's
            # prefix is still the exact state some past ack promised.
            for delta_payload in report.deltas.get(graph_id, ()):
                try:
                    delta = GraphDelta.from_wire(delta_payload)
                except ValueError:
                    dropped += 1
                    break
                if delta.base_version != graph.version:
                    dropped += 1
                    break
                try:
                    with graph.mutate() as target:
                        apply_ops(target, delta.ops)
                except ReproError:
                    dropped += 1
                    break
                deltas_replayed += 1
            self.registry.add_graph(graph_id, graph)
            graphs += 1
        for entry in report.results:
            graph_id = entry.get("graph")
            try:
                graph = self.registry.graph(graph_id)
            except UnknownGraphError:
                dropped += 1
                continue
            if entry.get("version") != graph.version:
                dropped += 1  # result of a replaced upload under the same id
                continue
            try:
                query = FairCliqueQuery.from_wire(entry.get("query") or {})
            except (ReproError, TypeError):
                dropped += 1
                continue
            self.result_cache.put(graph_id, graph.version, query, entry.get("report"))
            results += 1
        return {
            "graphs_recovered": graphs,
            "results_restored": results,
            "deltas_replayed": deltas_replayed,
            "entries_dropped": dropped,
            "checkpoints_found": report.checkpoints,
            **report.stats,
        }

    def _checkpoint_for(self, graph_id: str, graph, query: FairCliqueQuery):
        """The durable checkpoint handle for one solve, or ``None``.

        Only parallel exact maximum solves checkpoint: they are the
        long-running shape, and shard completion is their natural unit of
        persisted progress.
        """
        if (
            self.durability is None
            or query.task != "maximum"
            or query.engine != "exact"
            or (query.workers or 1) <= 1
        ):
            return None
        key = "|".join((
            graph_id,
            str(graph.version),
            json.dumps(query.to_wire(), sort_keys=True, separators=(",", ":")),
        ))
        return self.durability.checkpoint_handle(key)

    # ------------------------------------------------------------------ #
    # Graph management (also used by the CLI preload path)
    # ------------------------------------------------------------------ #
    def add_graph(self, graph_id: str, graph, *, payload: dict | None = None) -> None:
        """Serve ``graph`` under ``graph_id`` (replacing any previous one).

        Replacement drops the id's cached results explicitly: a fresh graph
        can land on the same deterministic mutation version as the one it
        replaces, so version keying alone would serve stale answers.

        With a durable store attached the graph is WAL-logged (and fsynced)
        *before* it becomes visible: when the append fails the method raises
        :class:`~repro.durability.WalWriteError` and the registry is left
        untouched, so a client never gets an ack for a graph a restart would
        lose.
        """
        if self.durability is not None:
            wire_payload = payload if payload is not None else graph_to_wire(graph)
            self.durability.record_graph(graph_id, wire_payload)
        self.registry.add_graph(graph_id, graph)
        self.result_cache.invalidate(graph_id)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def drain(self) -> None:
        """Refuse new query work, wait out in-flight solves, release resources."""
        self.draining = True
        await self.admission.drain()
        self.backend.shutdown()
        self.registry.close()
        if self.durability is not None:
            self.durability.close()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one request on one connection (the asyncio server callback)."""
        endpoint = "?"
        status = 500
        started = time.monotonic()
        try:
            try:
                request = await read_request(reader)
            except HTTPError as error:
                endpoint = "(malformed)"
                status = error.status
                await send_response(writer, status, error_body(status, error.message))
                return
            if request is None:
                return  # clean EOF before a request
            endpoint = f"{request.method} /{request.segments[0]}" if request.segments \
                else f"{request.method} /"
            faults.maybe_fire("http.request", endpoint=endpoint, path=request.path)
            status = await self._route(request, writer)
        except ConnectionError:
            status = 0  # client went away mid-response; nothing to send
            self.metrics.inc("client_disconnects")
        except Exception as error:  # noqa: BLE001 - the server must not die
            status = 500
            try:
                await send_response(
                    writer, 500, error_body(500, f"internal error: {error}")
                )
            except ConnectionError:
                pass
        finally:
            if status:
                self.metrics.observe(endpoint, status, time.monotonic() - started)
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _route(self, request: HTTPRequest, writer) -> int:
        """Dispatch one parsed request; returns the response status."""
        try:
            return await self._dispatch(request, writer)
        except HTTPError as error:
            await send_response(
                writer, error.status, error_body(error.status, error.message)
            )
            return error.status
        except ServiceOverloadedError as error:
            await send_response(
                writer, 429, error_body(429, str(error)),
                extra_headers={"Retry-After": "1"},
            )
            return 429
        except CircuitOpenError as error:
            # The graph's breaker is open: fail fast with an honest hint of
            # when the next probe will be admitted.
            await send_response(
                writer, 503, error_body(503, str(error)),
                extra_headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after)))
                },
            )
            return 503
        except SolveCrashedError as error:
            await send_response(writer, 500, error_body(500, str(error)))
            return 500
        except WalWriteError as error:
            # Disk pressure (ENOSPC and friends) on the durable store: the
            # operation was not acknowledged, nothing was made visible, and
            # the condition is usually transient — an honest retryable 503,
            # not a crashed connection handler.
            self.metrics.inc("wal_errors")
            await send_response(
                writer, 503, error_body(503, f"durable store write failed: {error}"),
                extra_headers={"Retry-After": "2"},
            )
            return 503
        except faults.InjectedFault as error:
            await send_response(
                writer, 500, error_body(500, f"injected fault: {error}")
            )
            return 500
        except UnknownGraphError as error:
            await send_response(writer, 404, error_body(404, str(error)))
            return 404
        except ReproError as error:
            # The request was well-formed but asks an unanswerable question
            # (unknown engine, invalid parameters, closed session...).
            await send_response(writer, 422, error_body(422, str(error)))
            return 422

    async def _dispatch(self, request: HTTPRequest, writer) -> int:
        segments = request.segments
        if request.method == "GET":
            if segments == ("healthz",):
                return await self._handle_healthz(writer)
            if segments == ("metrics",):
                return await self._handle_metrics(writer)
            if segments == ("graphs",):
                await send_response(writer, 200, dumps(
                    {"graphs": self.registry.graph_ids()}
                ))
                return 200
            if len(segments) == 2 and segments[0] == "graphs":
                return await self._handle_graph_info(segments[1], writer)
            raise HTTPError(404, f"no such endpoint GET {request.path!r}")
        if request.method == "POST":
            if len(segments) == 2 and segments[0] == "graphs":
                return await self._handle_graph_upload(segments[1], request, writer)
            if (
                len(segments) == 3
                and segments[0] == "graphs"
                and segments[2] == "mutations"
            ):
                return await self._handle_graph_mutations(
                    segments[1], request, writer
                )
            if segments == ("solve",):
                return await self._handle_solve(request, writer)
            if segments == ("explain",):
                return await self._handle_explain(request, writer)
            if segments == ("stream",):
                return await self._handle_stream(request, writer)
            if segments == ("enumerate",):
                return await self._handle_enumerate(request, writer)
            raise HTTPError(404, f"no such endpoint POST {request.path!r}")
        raise HTTPError(405, f"method {request.method} is not supported")

    # ------------------------------------------------------------------ #
    # Introspection endpoints
    # ------------------------------------------------------------------ #
    async def _handle_healthz(self, writer) -> int:
        breakers_open = self.breakers.open_keys()
        if self.draining:
            status = "draining"  # draining wins: the server is going away
        elif breakers_open:
            status = "degraded"  # alive, but some graphs are failing fast
        else:
            status = "ok"
        payload = {
            "status": status,
            "schema": SCHEMA,
            "graphs": self.registry.graph_ids(),
            "breakers_open": breakers_open,
            "uptime_seconds": time.monotonic() - self._started,
        }
        if self.durability is not None:
            payload["durability"] = {
                "data_dir": str(self.durability.data_dir),
                "recovery": self.recovery,
            }
        await send_response(writer, 200, dumps(payload))
        return 200

    async def _handle_metrics(self, writer) -> int:
        durability = None
        if self.durability is not None:
            durability = {**self.durability.info(), "recovery": self.recovery}
        await send_response(writer, 200, dumps({
            "schema": SCHEMA,
            "draining": self.draining,
            "uptime_seconds": time.monotonic() - self._started,
            "admission": self.admission.info(),
            "result_cache": self.result_cache.info(),
            "sessions": self.registry.info(),
            "quotas": self.quotas.info(),
            "executor": self.backend.info(),
            "breakers": self.breakers.info(),
            "durability": durability,
            "http": self.metrics.snapshot(),
        }))
        return 200

    async def _handle_graph_info(self, graph_id: str, writer) -> int:
        graph = self.registry.graph(graph_id)
        await send_response(writer, 200, dumps({
            "graph": graph_id,
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "version": graph.version,
            "attributes": graph.attribute_histogram(),
        }))
        return 200

    async def _handle_graph_upload(self, graph_id: str, request, writer) -> int:
        self._check_accepting()
        payload = parse_json_body(request.body)
        graph = graph_from_wire(payload)
        # Hand the already-parsed wire payload down so the WAL records the
        # exact bytes-equivalent shape the client sent (and add_graph does
        # not pay a second serialisation).
        self.add_graph(graph_id, graph, payload=payload)
        await send_response(writer, 200, dumps({
            "graph": graph_id, "n": graph.num_vertices, "m": graph.num_edges,
        }))
        return 200

    async def _handle_graph_mutations(self, graph_id: str, request, writer) -> int:
        """Apply one mutation batch to a served graph: one version bump.

        All-or-nothing: the batch is first replayed on a scratch copy, so an
        inapplicable op (removing a missing edge, adding an edge to an
        unknown vertex) surfaces as 422 with the served graph untouched.
        The *effective* delta (no-ops dropped) is WAL-logged and fsynced
        before the live graph moves, mirroring :meth:`add_graph`: once the
        ack goes out, a warm restart replays base + chain to exactly the
        pre- or post-batch version, never a torn intermediate.

        The result cache is delta-aware: a deletion-only batch that touches
        neither the attribute domain nor a cached optimal clique *promotes*
        that answer to the new version (deletions only shrink the feasible
        set), instead of forcing a re-solve; everything else ages out via
        the version-keyed cache.  The graph's session is refreshed in place
        by the registry on the next query.
        """
        self._check_accepting()
        ops = parse_mutations_request(request.body)
        graph = self.registry.graph(graph_id)
        faults.maybe_fire("service.mutate", graph=graph_id, ops=len(ops))
        base_version = graph.version
        # Dry-run on a copy; ReproError propagates as 422 before anything
        # is logged or made visible.
        trial = graph.subgraph(list(graph.vertices()))
        trial_base = trial.version
        with trial.mutate() as scratch:
            apply_ops(scratch, ops)
        trial_delta = trial.delta_since(trial_base)
        effective = trial_delta.ops if trial_delta is not None else ()
        if not effective:
            await send_response(writer, 200, dumps({
                "graph": graph_id, "version": graph.version,
                "base_version": base_version, "applied": 0,
                "requested": len(ops), "n": graph.num_vertices,
                "m": graph.num_edges, "results_promoted": 0,
            }))
            return 200
        delta = GraphDelta(base_version, base_version + 1, ops=effective)
        if self.durability is not None:
            self.durability.record_graph_delta(graph_id, delta.to_wire())
        old_domain = graph.attribute_values()
        with graph.mutate() as target:
            apply_ops(target, effective)
        promoted = 0
        if delta.deletion_only and graph.attribute_values() == old_domain:
            removed_vertices = delta.removed_vertices()
            removed_edges = delta.removed_edges()

            def survives(query: FairCliqueQuery, payload) -> bool:
                if query.task != "maximum" or query.engine != "exact":
                    return False
                if not isinstance(payload, dict) or not payload.get("optimal"):
                    return False
                clique = set(payload.get("clique") or ())
                if not clique or clique & removed_vertices:
                    return False
                return not any(edge <= clique for edge in removed_edges)

            promoted = self.result_cache.promote(
                graph_id, base_version, graph.version, survives
            )
        await send_response(writer, 200, dumps({
            "graph": graph_id, "version": graph.version,
            "base_version": base_version, "applied": len(effective),
            "requested": len(ops), "n": graph.num_vertices,
            "m": graph.num_edges, "results_promoted": promoted,
        }))
        return 200

    # ------------------------------------------------------------------ #
    # Query endpoints
    # ------------------------------------------------------------------ #
    def _check_accepting(self) -> None:
        if self.draining:
            raise HTTPError(503, "server is draining; not accepting new work")

    def _admit_query(
        self, body: bytes
    ) -> tuple[str, FairCliqueQuery, str, dict, dict]:
        """Shared front half: drain gate, envelope parse, tier clamp.

        The final element is the raw request payload, so handlers can read
        envelope-level flags (``allow_degraded``) the query itself does not
        carry.
        """
        self._check_accepting()
        graph_id, query, tier_name, payload = parse_query_request(body)
        tier = self.quotas.tier(tier_name)
        clamped, clamps = tier.clamp(query)
        return graph_id, clamped, tier.name, clamps, payload

    async def _handle_solve(self, request, writer) -> int:
        graph_id, query, tier_name, clamps, payload = self._admit_query(request.body)
        allow_degraded = bool(payload.get("allow_degraded", False))
        graph = self.registry.graph(graph_id)
        cached = self.result_cache.get(graph_id, graph.version, query)
        if cached is not None:
            await send_response(writer, 200, dumps({
                "graph": graph_id, "tier": tier_name, "cached": True,
                "quota_clamped": clamps or None, "report": cached,
            }))
            return 200
        # Fail fast while the graph's breaker is open — before burning an
        # admission slot or an executor thread on a doomed solve.
        self.breakers.check(graph_id)
        # One deadline for the whole request: it starts ticking *now*, so
        # time spent queued for admission counts against the clamped budget
        # and the solver aborts when whatever remains runs out.
        deadline = Deadline.start(query.time_limit)
        async with self.admission:
            if deadline.expired():
                raise HTTPError(
                    503, "request budget expired while queued for admission"
                )
            session = self.registry.session(graph_id)
            checkpoint = self._checkpoint_for(graph_id, graph, query)
            try:
                faults.maybe_fire("service.solve", graph=graph_id)
                report = await asyncio.wrap_future(self.backend.submit(
                    functools.partial(
                        session.solve, query,
                        deadline=deadline, checkpoint=checkpoint,
                    )
                ))
            except (SolveCrashedError, faults.InjectedFault) as error:
                self.breakers.record_failure(graph_id)
                self.metrics.inc("solver_crashes")
                if not allow_degraded or query.task != "maximum":
                    raise
                # Degraded tier: the exact solve is crashing, but the caller
                # opted into a best-effort answer — fall back to the
                # linear-time heuristic (options are exact-engine knobs, so
                # they are dropped) and say so in the envelope.
                fallback = replace(query, engine="heuristic", options={})
                report = await asyncio.wrap_future(
                    self.backend.submit(session.solve, fallback)
                )
                self.metrics.inc("degraded_responses")
                await send_response(writer, 200, dumps({
                    "graph": graph_id, "tier": tier_name, "cached": False,
                    "quota_clamped": clamps or None,
                    "degraded": True,
                    "degraded_reason": str(error),
                    "report": report.to_wire(),
                }))
                return 200
        self.breakers.record_success(graph_id)
        parallel = (report.metadata or {}).get("parallel") or {}
        self.metrics.inc("shard_retries", int(parallel.get("shards_retried", 0)))
        self.metrics.inc("pool_respawns", int(parallel.get("pool_respawns", 0)))
        wire = report.to_wire()
        if not report.aborted:
            # A budget-truncated answer reflects machine load, not the
            # question; only finished answers are worth replaying.
            self.result_cache.put(graph_id, graph.version, query, wire)
            if self.durability is not None:
                # Results are reproducible, so their WAL is fsync-batched
                # and a failed append only costs a future re-solve — count
                # it, keep serving.
                try:
                    self.durability.record_result(
                        graph_id, graph.version, query.to_wire(), wire
                    )
                except WalWriteError:
                    self.metrics.inc("wal_errors")
        await send_response(writer, 200, dumps({
            "graph": graph_id, "tier": tier_name, "cached": False,
            "quota_clamped": clamps or None, "report": wire,
        }))
        return 200

    async def _handle_explain(self, request, writer) -> int:
        graph_id, query, tier_name, clamps, _ = self._admit_query(request.body)
        async with self.admission:
            session = self.registry.session(graph_id)
            plan = await asyncio.wrap_future(
                self.backend.submit(session.explain, query)
            )
        await send_response(writer, 200, dumps({
            "graph": graph_id, "tier": tier_name,
            "quota_clamped": clamps or None, "plan": plan.to_wire(),
        }))
        return 200

    async def _handle_stream(self, request, writer) -> int:
        graph_id, query, _, _, _ = self._admit_query(request.body)
        sse = (
            "text/event-stream" in request.header("accept")
            or request.params.get("format") == "sse"
        )
        async with self.admission:
            session = self.registry.session(graph_id)
            # One Event ties the consumer to the solver: the pump sets it
            # when the client disconnects (or this handler unwinds), the
            # streaming session parks it on the solver's budget check, and
            # the solve aborts instead of running to completion for nobody.
            stopped = threading.Event()
            # Resolve validation errors (wrong task/engine for streaming)
            # *before* the response head goes out, so they surface as clean
            # 4xx JSON instead of a broken stream.
            iterator = session.stream(query, stop_event=stopped)
            await start_streaming_response(
                writer,
                content_type=(
                    "text/event-stream" if sse else "application/x-ndjson"
                ),
            )
            events = 0
            async for event in self._pump(iterator, stopped=stopped):
                faults.maybe_fire("http.stream", event=events, graph=graph_id)
                events += 1
                line = dumps(event.to_wire())
                writer.write(b"data: " + line + b"\n" if sse else line)
                await writer.drain()
        return 200

    async def _handle_enumerate(self, request, writer) -> int:
        self._check_accepting()
        graph_id, query, _, payload = parse_query_request(request.body)
        limit = payload.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 1):
            raise HTTPError(400, f'"limit" must be a positive integer, got {limit!r}')
        async with self.admission:
            session = self.registry.session(graph_id)
            iterator = session.enumerate(query)
            await start_streaming_response(writer)
            count = 0
            async for clique in self._pump(iterator, limit=limit):
                writer.write(dumps({
                    "size": len(clique), "clique": sorted(clique, key=str),
                }))
                await writer.drain()
                count += 1
            writer.write(dumps({
                "done": True, "count": count,
                "truncated": limit is not None and count >= limit,
            }))
            await writer.drain()
        return 200

    # ------------------------------------------------------------------ #
    # The sync-iterator -> async bridge
    # ------------------------------------------------------------------ #
    async def _pump(
        self, iterator, limit: int | None = None,
        stopped: threading.Event | None = None,
    ):
        """Async-iterate a blocking generator by draining it on the backend.

        The producer runs ``iterator`` on the executor backend and hands
        items to the loop through a bounded queue (backpressure, not an
        unbounded buffer).  Exceptions raised by the generator re-raise
        here; when the consumer abandons the stream (client hung up), the
        producer notices the stop flag at its next item and closes the
        generator instead of blocking forever on a full queue.

        ``stopped`` may be supplied by the caller to share the flag with the
        producing generator itself (the stream handler hands the same Event
        to the session, so a disconnect aborts the underlying solve, not
        just the delivery).
        """
        import concurrent.futures

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=STREAM_BUFFER_EVENTS)
        done = object()
        if stopped is None:
            stopped = threading.Event()

        def put(item) -> bool:
            """Hand one item to the loop; False when the consumer is gone."""
            try:
                asyncio.get_running_loop()
            except RuntimeError:
                pass
            else:
                # Producer running *on* the loop thread (InlineBackend):
                # blocking would deadlock, so bypass the bound — inline
                # execution is a test/debug substrate, not production.
                queue.put_nowait(item)
                return True
            handle = asyncio.run_coroutine_threadsafe(queue.put(item), loop)
            while True:
                try:
                    handle.result(timeout=0.1)
                    return True
                except concurrent.futures.TimeoutError:
                    if stopped.is_set():
                        handle.cancel()
                        return False
                except (concurrent.futures.CancelledError, RuntimeError):
                    return False  # loop shut down underneath us

        def produce() -> None:
            try:
                produced = 0
                for item in iterator:
                    if stopped.is_set() or not put(("item", item)):
                        return
                    produced += 1
                    if limit is not None and produced >= limit:
                        break
            except BaseException as error:  # noqa: BLE001 - forwarded to consumer
                put(("error", error))
            else:
                put((done, None))
            finally:
                close = getattr(iterator, "close", None)
                if close is not None:
                    close()

        self.backend.submit(produce)
        try:
            while True:
                kind, item = await queue.get()
                if kind is done:
                    break
                if kind == "error":
                    raise item
                yield item
        finally:
            stopped.set()
            while not queue.empty():
                queue.get_nowait()
