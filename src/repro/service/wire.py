"""JSON envelopes of the service tier.

The per-object wire formats live on the objects themselves
(:meth:`FairCliqueQuery.to_wire`, :meth:`SolveReport.to_wire`,
:meth:`Incumbent.to_wire`, :meth:`QueryPlan.to_wire` — the satellite API of
this subsystem).  What this module adds is the *request/response* layer the
HTTP front-end speaks:

* :func:`parse_json_body` / :func:`error_body` — body plumbing with uniform
  ``{"error": ..., "status": ...}`` failures;
* :func:`parse_query_request` — the ``{"graph": id, "query": {...},
  "tier": name}`` envelope every query endpoint accepts;
* :func:`parse_mutations_request` — the ``{"mutations": [[op, ...], ...]}``
  batch accepted by ``POST /graphs/{id}/mutations``;
* :func:`graph_to_wire` / :func:`graph_from_wire` — an attributed graph as
  plain data, used by ``POST /graphs/{id}`` uploads and the example client.
"""

from __future__ import annotations

import json

from repro.api.query import FairCliqueQuery
from repro.exceptions import ReproError
from repro.graph.attributed_graph import AttributedGraph
from repro.incremental.delta import decode_op
from repro.service.http import HTTPError


def dumps(payload) -> bytes:
    """Canonical one-line JSON bytes (sorted keys, trailing newline)."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def error_body(status: int, message: str) -> bytes:
    """The uniform error envelope every failing endpoint returns."""
    return dumps({"error": message, "status": status})


def parse_json_body(body: bytes) -> dict:
    """Decode a request body as a JSON object, mapping failures to 400."""
    if not body:
        raise HTTPError(400, "request body must be a JSON object (got empty body)")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as error:
        raise HTTPError(400, f"request body is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise HTTPError(400, "request body must be a JSON object")
    return payload


def parse_query_request(body: bytes) -> tuple[str, FairCliqueQuery, str | None, dict]:
    """Parse the query envelope: ``(graph_id, query, tier, raw_payload)``.

    Library-level validation errors (unknown model, NaN time limit, …)
    surface as 422 — the request was well-formed JSON describing an
    unanswerable question, which is distinct from a 400 syntax failure.
    """
    payload = parse_json_body(body)
    graph_id = payload.get("graph")
    if not isinstance(graph_id, str) or not graph_id:
        raise HTTPError(400, 'request needs a non-empty "graph" id string')
    query_payload = payload.get("query")
    if query_payload is None:
        raise HTTPError(400, 'request needs a "query" object')
    tier = payload.get("tier")
    if tier is not None and not isinstance(tier, str):
        raise HTTPError(400, '"tier" must be a string when given')
    try:
        query = FairCliqueQuery.from_wire(query_payload)
    except ReproError as error:
        raise HTTPError(422, f"invalid query: {error}") from None
    return graph_id, query, tier, payload


def parse_mutations_request(body: bytes) -> list[tuple]:
    """Parse a mutation batch: decoded ops in submission order.

    The wire shape is ``{"mutations": [["add_edge", u, v], ...]}`` using the
    op alphabet of :func:`repro.incremental.delta.decode_op`.  Structural
    problems (not a list, unknown tag, wrong arity) map to 400; whether the
    ops are *applicable* to the served graph is the handler's 422 concern.
    """
    payload = parse_json_body(body)
    ops = payload.get("mutations")
    if not isinstance(ops, list) or not ops:
        raise HTTPError(400, 'request needs a non-empty "mutations" array')
    try:
        return [decode_op(op) for op in ops]
    except ValueError as error:
        raise HTTPError(400, f"invalid mutation: {error}") from None


def graph_to_wire(graph: AttributedGraph) -> dict:
    """An attributed graph as plain data (vertices with attributes + edges)."""
    vertices = []
    for vertex in sorted(graph.vertices(), key=str):
        label = graph.label(vertex)
        entry = [vertex, graph.attribute(vertex)]
        if label != str(vertex):
            entry.append(label)
        vertices.append(entry)
    edges = sorted(
        (sorted((u, v), key=str) for u, v in graph.edges()),
        key=lambda pair: (str(pair[0]), str(pair[1])),
    )
    return {"vertices": vertices, "edges": edges}


def graph_from_wire(payload: dict) -> AttributedGraph:
    """Rebuild an attributed graph from :func:`graph_to_wire` output.

    Malformed structure maps to 400; graph-level violations (self-loops,
    edges naming unknown vertices) map to 422.
    """
    if not isinstance(payload, dict):
        raise HTTPError(400, "graph payload must be a JSON object")
    vertices = payload.get("vertices")
    edges = payload.get("edges", [])
    if not isinstance(vertices, list) or not isinstance(edges, list):
        raise HTTPError(400, 'graph payload needs "vertices" and "edges" arrays')
    graph = AttributedGraph()
    try:
        for entry in vertices:
            if not isinstance(entry, list) or len(entry) not in (2, 3):
                raise HTTPError(
                    400, f"vertex entries are [id, attribute] or "
                         f"[id, attribute, label], got {entry!r}"
                )
            graph.add_vertex(entry[0], str(entry[1]),
                             entry[2] if len(entry) == 3 else None)
        for entry in edges:
            if not isinstance(entry, list) or len(entry) != 2:
                raise HTTPError(400, f"edge entries are [u, v], got {entry!r}")
            graph.add_edge(entry[0], entry[1])
    except ReproError as error:
        raise HTTPError(422, f"invalid graph: {error}") from None
    return graph
