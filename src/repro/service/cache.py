"""The cross-request result cache of the service tier.

A session already memoizes *artifacts* (reductions, kernels); what it never
does is short-circuit a repeated **question**.  Production query traffic is
heavily repetitive — the same dashboard asks the same ``(graph, k, delta)``
every refresh — so the service keeps a bounded LRU of finished
:class:`~repro.api.report.SolveReport`/:class:`~repro.api.session.QueryPlan`
wire payloads keyed by::

    (graph id, graph mutation version, FairCliqueQuery)

The graph version in the key makes invalidation free: mutate the graph and
every cached answer for it simply stops matching (superseded entries age out
of the LRU).  The full query object rides in the key (its ``__hash__`` is
the canonicalised one the API layer defines) so hash collisions cannot serve
a wrong answer.

Aborted reports are never cached: a budget-truncated answer depends on how
loaded the machine was, not just on the question.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.api.query import FairCliqueQuery
from repro.exceptions import InvalidParameterError


class ResultCache:
    """A thread-safe bounded LRU of wire-format query answers."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise InvalidParameterError(
                f"result cache capacity must be >= 0, got {capacity!r}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.promotions = 0

    @staticmethod
    def key(graph_id: str, graph_version: int, query: FairCliqueQuery) -> tuple:
        return (graph_id, graph_version, query)

    def get(self, graph_id: str, graph_version: int,
            query: FairCliqueQuery) -> dict | None:
        """The cached wire payload, or ``None`` (counts a hit/miss)."""
        key = self.key(graph_id, graph_version, query)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, graph_id: str, graph_version: int,
            query: FairCliqueQuery, payload: dict) -> None:
        """Insert (or refresh) an answer, evicting the LRU entry on overflow."""
        if self.capacity == 0:
            return
        key = self.key(graph_id, graph_version, query)
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def promote(self, graph_id: str, old_version: int, new_version: int,
                keep) -> int:
        """Carry surviving answers across a mutation instead of losing them.

        For every entry keyed ``(graph_id, old_version, query)`` where
        ``keep(query, payload)`` is true, a copy is inserted under
        ``new_version``; everything else is left to age out (the version in
        the key already makes it unreachable).  The caller owns the proof
        obligation: the service promotes only optimal exact ``maximum``
        answers across deletion-only deltas that touch neither the cached
        clique nor the attribute domain — deletions can only shrink the
        feasible set, so an untouched optimum stays optimal.

        Returns the number of entries promoted.
        """
        if old_version == new_version:
            return 0
        promoted = 0
        with self._lock:
            survivors = [
                (key[2], payload)
                for key, payload in self._entries.items()
                if key[0] == graph_id and key[1] == old_version
                and keep(key[2], payload)
            ]
            for query, payload in survivors:
                key = self.key(graph_id, new_version, query)
                self._entries[key] = payload
                self._entries.move_to_end(key)
                promoted += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self.promotions += promoted
        return promoted

    def invalidate(self, graph_id: str) -> int:
        """Drop every entry for ``graph_id``; returns how many were dropped.

        The version in the key already invalidates *in-place mutation* for
        free; this handles *replacement* — a freshly built graph uploaded
        under an existing id can land on the same deterministic mutation
        count as its predecessor, so its entries must go explicitly.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == graph_id]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> dict:
        """Plain-data snapshot for ``/metrics``."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "promotions": self.promotions,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
