"""Per-tier quota clamping: bounded work per request class.

A public query endpoint cannot let every caller request an unbounded exact
solve.  A :class:`QuotaTier` declares the ceilings one request class may
spend — wall-clock (``time_limit``), branch budget (the exact engine's
``branch_limit`` option), and worker processes — and :meth:`QuotaTier.clamp`
rewrites a query to respect them:

* a missing ``time_limit`` becomes the tier's ceiling (no tier grants
  "run forever" unless its ceiling is ``None``);
* a requested value above the ceiling is clamped down, and the response
  metadata says so (``quota_clamped``) instead of silently serving a
  different question than was asked;
* enumeration tasks take no budget options by API contract, so only
  ``workers`` applies to them.

Tiers are plain data; :func:`default_tiers` ships a small free/standard/
unlimited ladder and services may pass their own.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.api.query import FairCliqueQuery
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class QuotaTier:
    """Ceilings for one request class (``None`` means uncapped)."""

    name: str
    max_time_limit: float | None = None
    max_branch_limit: int | None = None
    max_workers: int | None = None

    def clamp(self, query: FairCliqueQuery) -> tuple[FairCliqueQuery, dict]:
        """``(clamped_query, clamps)`` — what will run, and what changed.

        ``clamps`` maps each adjusted knob to ``{"requested": ...,
        "granted": ...}`` so the response can carry an honest
        ``quota_clamped`` note.  An unchanged query is returned as-is.
        """
        changes: dict[str, dict] = {}
        fields: dict = {}

        if self.max_time_limit is not None and query.task == "maximum":
            requested = query.time_limit
            if requested is None or requested > self.max_time_limit:
                fields["time_limit"] = self.max_time_limit
                changes["time_limit"] = {
                    "requested": requested, "granted": self.max_time_limit,
                }

        if self.max_branch_limit is not None and query.task == "maximum":
            requested_branches = query.options.get("branch_limit")
            if requested_branches is None or requested_branches > self.max_branch_limit:
                # branch_limit is an exact-engine option; other engines have
                # no branching to budget and would reject the unknown option.
                if query.engine == "exact":
                    options = dict(query.options)
                    options["branch_limit"] = self.max_branch_limit
                    fields["options"] = options
                    changes["branch_limit"] = {
                        "requested": requested_branches,
                        "granted": self.max_branch_limit,
                    }

        if self.max_workers is not None:
            requested_workers = query.workers
            if requested_workers is not None and requested_workers > self.max_workers:
                fields["workers"] = self.max_workers
                changes["workers"] = {
                    "requested": requested_workers, "granted": self.max_workers,
                }

        if not fields:
            return query, changes
        return replace(query, **fields), changes


def default_tiers() -> dict[str, QuotaTier]:
    """The built-in free / standard / unlimited ladder."""
    tiers = (
        QuotaTier("free", max_time_limit=5.0, max_branch_limit=200_000, max_workers=1),
        QuotaTier("standard", max_time_limit=30.0, max_branch_limit=2_000_000,
                  max_workers=2),
        QuotaTier("unlimited"),
    )
    return {tier.name: tier for tier in tiers}


class QuotaPolicy:
    """Named tiers plus the default applied when a request names none."""

    def __init__(self, tiers: dict[str, QuotaTier] | None = None,
                 default: str = "standard") -> None:
        self.tiers = dict(tiers) if tiers is not None else default_tiers()
        if default not in self.tiers:
            raise InvalidParameterError(
                f"default tier {default!r} is not one of {sorted(self.tiers)}"
            )
        self.default = default

    def tier(self, name: str | None) -> QuotaTier:
        """Resolve a requested tier name (``None`` → the default)."""
        if name is None:
            return self.tiers[self.default]
        try:
            return self.tiers[name]
        except KeyError:
            raise InvalidParameterError(
                f"unknown quota tier {name!r}; available: {sorted(self.tiers)}"
            ) from None

    def info(self) -> dict:
        """Plain-data snapshot for ``/metrics``."""
        return {
            "default": self.default,
            "tiers": {
                name: {
                    "max_time_limit": tier.max_time_limit,
                    "max_branch_limit": tier.max_branch_limit,
                    "max_workers": tier.max_workers,
                }
                for name, tier in sorted(self.tiers.items())
            },
        }
