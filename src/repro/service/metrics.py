"""Service metrics: per-endpoint latency histograms and request counters.

Stdlib-only observability in the Prometheus spirit: fixed-bucket latency
histograms (so percentile estimates cost O(buckets), never O(samples)) and
monotonic counters, all surfaced as one plain-data snapshot by ``/metrics``.

Percentiles from fixed buckets are upper-bound estimates — the reported
p50/p99 is the upper edge of the bucket containing that quantile — which is
exactly the trade Prometheus makes, and plenty for "did warm latency drop
an order of magnitude".
"""

from __future__ import annotations

import threading

#: Bucket upper bounds in seconds (the last bucket is +inf).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram with cheap percentile estimates."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # + the +inf bucket
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        for index, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def percentile(self, fraction: float) -> float:
        """Upper-bound estimate of the ``fraction`` quantile (0 < f <= 1)."""
        if self.total == 0:
            return 0.0
        rank = max(1, int(fraction * self.total + 0.999999))
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max_seconds  # +inf bucket: report the max seen
        return self.max_seconds

    def snapshot(self) -> dict:
        return {
            "count": self.total,
            "sum_seconds": self.sum_seconds,
            "mean_seconds": (self.sum_seconds / self.total) if self.total else 0.0,
            "p50_seconds": self.percentile(0.50),
            "p99_seconds": self.percentile(0.99),
            "max_seconds": self.max_seconds,
        }


class ServiceMetrics:
    """Thread-safe request counters + per-endpoint latency histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency: dict[str, LatencyHistogram] = {}
        self._requests: dict[str, int] = {}
        self._statuses: dict[int, int] = {}
        self._counters: dict[str, int] = {}

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one finished request."""
        with self._lock:
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
            histogram.observe(seconds)
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            self._statuses[status] = self._statuses.get(status, 0) + 1

    def inc(self, name: str, amount: int = 1) -> None:
        """Bump a named monotonic counter (resilience events, retries, …)."""
        if amount == 0:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Read one named counter (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """Plain-data snapshot for ``/metrics``."""
        with self._lock:
            return {
                "requests_total": sum(self._requests.values()),
                "requests_by_endpoint": dict(sorted(self._requests.items())),
                "responses_by_status": {
                    str(status): count
                    for status, count in sorted(self._statuses.items())
                },
                "counters": dict(sorted(self._counters.items())),
                "latency_by_endpoint": {
                    endpoint: histogram.snapshot()
                    for endpoint, histogram in sorted(self._latency.items())
                },
            }
