"""The bounded LRU registry mapping graph ids to long-lived sessions.

The service tier's unit of warmth is a :class:`~repro.api.FairCliqueSession`:
it owns the compiled kernel, the memoized reductions, and (when batches are
involved) a persistent worker pool.  Those are exactly the artifacts worth
keeping alive between requests — and exactly the ones that must be bounded,
because every prepared graph pins memory and possibly a process pool.

:class:`SessionRegistry` therefore keeps **at most ``capacity`` open
sessions** in least-recently-used order:

* :meth:`session` returns the warm session for a graph id, opening (and
  possibly evicting) as needed;
* an entry whose graph has **mutated since the session was opened** is
  stale — its artifacts describe the pre-mutation graph — so it is
  ``refresh()``-ed in place (delta-patched kernel, component-scoped
  reduction reuse, warm incumbents), falling back to close-and-replace
  only when the refresh itself fails;
* **eviction closes** the evicted session (shutting its batch pool down);
* :meth:`close` is idempotent and closes everything.

All methods are thread-safe: the service executes queries on a worker-thread
backend, so registry lookups race by design.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.api.session import FairCliqueSession
from repro.exceptions import InvalidParameterError
from repro.graph.attributed_graph import AttributedGraph


class UnknownGraphError(InvalidParameterError):
    """Raised for a graph id the registry has never been given."""


class SessionRegistry:
    """Graph ids → prepared graphs → at most ``capacity`` live sessions."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"session registry capacity must be >= 1, got {capacity!r}"
            )
        self.capacity = capacity
        self._graphs: dict[str, AttributedGraph] = {}
        self._sessions: OrderedDict[str, FairCliqueSession] = OrderedDict()
        self._lock = threading.RLock()
        self._closed = False
        #: Plain-data lifecycle counters surfaced through ``/metrics``.
        self.telemetry: dict = {
            "sessions_opened": 0,
            "sessions_evicted": 0,
            "sessions_invalidated": 0,
            "sessions_refreshed": 0,
        }

    # ------------------------------------------------------------------ #
    # Graph management
    # ------------------------------------------------------------------ #
    def add_graph(self, graph_id: str, graph: AttributedGraph) -> None:
        """Register (or replace) the graph behind ``graph_id``.

        Replacing a graph closes its current session: the old artifacts
        describe the old graph.
        """
        if not graph_id:
            raise InvalidParameterError("graph id must be a non-empty string")
        with self._lock:
            self._check_open()
            self._graphs[graph_id] = graph
            stale = self._sessions.pop(graph_id, None)
        if stale is not None:
            stale.close()

    def remove_graph(self, graph_id: str) -> None:
        """Forget ``graph_id``, closing its session if one is open."""
        with self._lock:
            self._graphs.pop(graph_id, None)
            stale = self._sessions.pop(graph_id, None)
        if stale is not None:
            stale.close()

    def graph(self, graph_id: str) -> AttributedGraph:
        """The registered graph behind ``graph_id`` (raises when unknown)."""
        with self._lock:
            try:
                return self._graphs[graph_id]
            except KeyError:
                raise UnknownGraphError(
                    f"unknown graph id {graph_id!r}; registered: {self.graph_ids()}"
                ) from None

    def graph_ids(self) -> list[str]:
        """Registered graph ids, sorted."""
        with self._lock:
            return sorted(self._graphs)

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    def session(self, graph_id: str) -> FairCliqueSession:
        """The warm session for ``graph_id`` — opened, refreshed, or reused.

        Marks the entry most-recently-used.  A stale entry (the graph
        mutated after the session was opened) is closed and replaced; the
        least-recently-used entry is evicted — and closed — when opening
        would exceed the capacity.
        """
        evicted: list[FairCliqueSession] = []
        with self._lock:
            self._check_open()
            graph = self._graphs.get(graph_id)
            if graph is None:
                raise UnknownGraphError(
                    f"unknown graph id {graph_id!r}; registered: {self.graph_ids()}"
                )
            session = self._sessions.get(graph_id)
            if session is not None and session.graph_version != graph.version:
                # Stale: the graph moved on.  First choice is refreshing the
                # session in place — it patches the cached kernel and reuses
                # untouched-component reduction survivors instead of paying a
                # cold rebuild.  refresh() itself degrades to a cold context
                # when the delta journal dropped history, so a failure here
                # means the session object is unusable: close and replace.
                try:
                    session.refresh()
                    self.telemetry["sessions_refreshed"] += 1
                except Exception:  # noqa: BLE001 - fall back to a fresh session
                    del self._sessions[graph_id]
                    evicted.append(session)
                    self.telemetry["sessions_invalidated"] += 1
                    session = None
            if session is None:
                while len(self._sessions) >= self.capacity:
                    _, oldest = self._sessions.popitem(last=False)
                    evicted.append(oldest)
                    self.telemetry["sessions_evicted"] += 1
                session = FairCliqueSession(graph)
                self._sessions[graph_id] = session
                self.telemetry["sessions_opened"] += 1
            self._sessions.move_to_end(graph_id)
        for stale in evicted:
            stale.close()
        return session

    def open_session_ids(self) -> list[str]:
        """Graph ids with a live session, least- to most-recently used."""
        with self._lock:
            return list(self._sessions)

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close every live session and refuse further use (idempotent)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._closed = True
        for session in sessions:
            session.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidParameterError("this SessionRegistry is closed")

    def __enter__(self) -> "SessionRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def info(self) -> dict:
        """Plain-data snapshot for ``/metrics``: per-session cache state."""
        with self._lock:
            sessions = {
                graph_id: session.cache_info()
                for graph_id, session in self._sessions.items()
            }
            return {
                "capacity": self.capacity,
                "graphs": len(self._graphs),
                "open_sessions": len(sessions),
                "sessions": sessions,
                **self.telemetry,
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SessionRegistry(capacity={self.capacity}, "
                f"graphs={len(self._graphs)}, open={len(self._sessions)})"
            )
