"""A stdlib HTTP client for the fair-clique service.

:class:`ServiceClient` speaks the service's JSON wire format and gives the
caller back the same objects the in-process API returns —
:class:`~repro.api.report.SolveReport` from :meth:`solve`,
:class:`~repro.api.session.Incumbent` events from :meth:`stream`,
:class:`~repro.api.session.QueryPlan` from :meth:`explain` — so switching
between a local session and a remote service is a one-line change.  Used by
the example client, the service benchmark suite, and the CI smoke test.

One connection per request (the server speaks ``Connection: close``), pure
``http.client`` underneath — no dependencies.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from http.client import HTTPConnection
from urllib.parse import urlsplit

from repro.api.query import FairCliqueQuery
from repro.api.report import SolveReport
from repro.api.session import Incumbent, QueryPlan
from repro.graph.attributed_graph import AttributedGraph
from repro.service.wire import graph_to_wire


class ServiceError(Exception):
    """A non-2xx response from the service, carrying its error envelope."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """A synchronous client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// service URLs are supported, got {base_url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _connect(self) -> HTTPConnection:
        return HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        connection = self._connect()
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {} if body is None else {"Content-Type": "application/json"}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw) if raw else {}
            if response.status >= 400:
                raise ServiceError(
                    response.status, decoded.get("error", raw.decode("utf-8", "replace"))
                )
            return decoded
        finally:
            connection.close()

    def _request_lines(self, path: str, payload: dict) -> Iterator[dict]:
        """POST and yield the NDJSON lines of a streaming response lazily."""
        connection = self._connect()
        try:
            connection.request(
                "POST", path, body=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error", "")
                except json.JSONDecodeError:
                    message = raw.decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    @staticmethod
    def _envelope(graph_id: str, query: FairCliqueQuery,
                  tier: str | None = None, **extra) -> dict:
        payload: dict = {"graph": graph_id, "query": query.to_wire(), **extra}
        if tier is not None:
            payload["tier"] = tier
        return payload

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def graphs(self) -> list[str]:
        return self._request("GET", "/graphs")["graphs"]

    def graph_info(self, graph_id: str) -> dict:
        return self._request("GET", f"/graphs/{graph_id}")

    def upload_graph(self, graph_id: str, graph: AttributedGraph) -> dict:
        """Serve ``graph`` under ``graph_id`` on the remote service."""
        return self._request("POST", f"/graphs/{graph_id}", graph_to_wire(graph))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def solve(self, graph_id: str, query: FairCliqueQuery,
              tier: str | None = None) -> SolveReport:
        """Remote ``session.solve``; the report round-trips the wire format."""
        return SolveReport.from_wire(
            self.solve_raw(graph_id, query, tier)["report"]
        )

    def solve_raw(self, graph_id: str, query: FairCliqueQuery,
                  tier: str | None = None) -> dict:
        """Like :meth:`solve` but returns the full response envelope
        (``cached``, ``quota_clamped``, ``tier``, raw ``report``)."""
        return self._request("POST", "/solve", self._envelope(graph_id, query, tier))

    def explain(self, graph_id: str, query: FairCliqueQuery,
                tier: str | None = None) -> QueryPlan:
        """Remote ``session.explain``."""
        payload = self._request(
            "POST", "/explain", self._envelope(graph_id, query, tier)
        )
        return QueryPlan.from_wire(payload["plan"])

    def stream(self, graph_id: str, query: FairCliqueQuery,
               tier: str | None = None) -> Iterator[Incumbent]:
        """Remote ``session.stream``: lazy NDJSON incumbents, final last."""
        for line in self._request_lines(
            "/stream", self._envelope(graph_id, query, tier)
        ):
            yield Incumbent.from_wire(line)

    def enumerate(self, graph_id: str, query: FairCliqueQuery,
                  limit: int | None = None) -> Iterator[frozenset]:
        """Remote ``session.enumerate``: lazy maximal fair cliques."""
        extra = {} if limit is None else {"limit": limit}
        for line in self._request_lines(
            "/enumerate", self._envelope(graph_id, query, **extra)
        ):
            if line.get("done"):
                return
            yield frozenset(line["clique"])
