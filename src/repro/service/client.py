"""A stdlib HTTP client for the fair-clique service.

:class:`ServiceClient` speaks the service's JSON wire format and gives the
caller back the same objects the in-process API returns —
:class:`~repro.api.report.SolveReport` from :meth:`solve`,
:class:`~repro.api.session.Incumbent` events from :meth:`stream`,
:class:`~repro.api.session.QueryPlan` from :meth:`explain` — so switching
between a local session and a remote service is a one-line change.  Used by
the example client, the service benchmark suite, and the CI smoke test.

One connection per request (the server speaks ``Connection: close``), pure
``http.client`` underneath — no dependencies.

Transient failures are retried: connection resets/refusals and 429/503
responses back off with bounded jittered exponential delays (honouring the
server's ``Retry-After`` hint when it sends one) before giving up.  Every
query the service exposes is a pure function of (graph, query), so replaying
a request is always safe.  Pass ``retries=0`` to opt out.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterator
from datetime import datetime, timezone
from email.utils import parsedate_to_datetime
from http.client import HTTPConnection
from urllib.parse import urlsplit

from repro.api.query import FairCliqueQuery
from repro.api.report import SolveReport
from repro.api.session import Incumbent, QueryPlan
from repro.graph.attributed_graph import AttributedGraph
from repro.resilience.retry import RetryPolicy
from repro.service.wire import graph_to_wire

#: Connection-level failures worth replaying: the server was restarting,
#: the listener's backlog was full, or the connection died mid-exchange.
_RETRYABLE_ERRORS = (ConnectionError, TimeoutError)

#: HTTP statuses that explicitly invite a retry (backpressure, open breaker).
_RETRYABLE_STATUSES = (429, 503)


class ServiceError(Exception):
    """A non-2xx response from the service, carrying its error envelope."""

    def __init__(
        self, status: int, message: str, retry_after: float | None = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: Parsed ``Retry-After`` header (seconds), when the server sent one.
        self.retry_after = retry_after


def _parse_retry_after(value) -> float | None:
    """Seconds until retry from a ``Retry-After`` header, or ``None``.

    RFC 9110 §10.2.3 allows two forms: delta-seconds (``"120"``) and an
    HTTP-date (``"Fri, 31 Dec 1999 23:59:59 GMT"``); both are accepted, a
    date already in the past clamps to ``0.0``, and any unparseable value
    returns ``None`` so the retry loop falls back to its backoff schedule
    instead of trusting garbage.
    """
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except (TypeError, ValueError):
        pass
    try:
        when = parsedate_to_datetime(str(value))
    except (TypeError, ValueError):
        return None
    if when is None:  # pre-3.10 parsedate returned None on garbage
        return None
    if when.tzinfo is None:
        # RFC 5322 dates without a usable zone are interpreted as GMT,
        # which is what HTTP servers emit anyway.
        when = when.replace(tzinfo=timezone.utc)
    return max(0.0, (when - datetime.now(timezone.utc)).total_seconds())


class ServiceClient:
    """A synchronous client bound to one service base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        *,
        retries: int = 2,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// service URLs are supported, got {base_url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout
        self.retry_policy = retry_policy or RetryPolicy(retries=retries)
        self._rng = self.retry_policy.make_rng()

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _connect(self) -> HTTPConnection:
        return HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _backoff(self, attempt: int, error: Exception) -> bool:
        """Sleep before retry ``attempt``; False once the budget is spent."""
        if attempt >= self.retry_policy.retries:
            return False
        retry_after = None
        if isinstance(error, ServiceError):
            if error.status not in _RETRYABLE_STATUSES:
                return False
            retry_after = error.retry_after
        time.sleep(self.retry_policy.delay(attempt, self._rng, retry_after))
        return True

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except (ServiceError, *_RETRYABLE_ERRORS) as error:
                if not self._backoff(attempt, error):
                    raise
                attempt += 1

    def _request_once(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        connection = self._connect()
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {} if body is None else {"Content-Type": "application/json"}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw) if raw else {}
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    decoded.get("error", raw.decode("utf-8", "replace")),
                    retry_after=_parse_retry_after(
                        response.getheader("Retry-After")
                    ),
                )
            return decoded
        finally:
            connection.close()

    def _request_lines(self, path: str, payload: dict) -> Iterator[dict]:
        """POST and yield the NDJSON lines of a streaming response lazily.

        Retries apply only *before the first line is delivered* — once the
        consumer has seen events, replaying the request from scratch would
        deliver duplicates, so a mid-stream failure propagates instead.
        """
        attempt = 0
        while True:
            started = False
            try:
                for line in self._request_lines_once(path, payload):
                    started = True
                    yield line
                return
            except (ServiceError, *_RETRYABLE_ERRORS) as error:
                if started or not self._backoff(attempt, error):
                    raise
                attempt += 1

    def _request_lines_once(self, path: str, payload: dict) -> Iterator[dict]:
        connection = self._connect()
        try:
            connection.request(
                "POST", path, body=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error", "")
                except json.JSONDecodeError:
                    message = raw.decode("utf-8", "replace")
                raise ServiceError(
                    response.status, message,
                    retry_after=_parse_retry_after(
                        response.getheader("Retry-After")
                    ),
                )
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    @staticmethod
    def _envelope(graph_id: str, query: FairCliqueQuery,
                  tier: str | None = None, **extra) -> dict:
        payload: dict = {"graph": graph_id, "query": query.to_wire(), **extra}
        if tier is not None:
            payload["tier"] = tier
        return payload

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def graphs(self) -> list[str]:
        return self._request("GET", "/graphs")["graphs"]

    def graph_info(self, graph_id: str) -> dict:
        return self._request("GET", f"/graphs/{graph_id}")

    def upload_graph(self, graph_id: str, graph: AttributedGraph) -> dict:
        """Serve ``graph`` under ``graph_id`` on the remote service."""
        return self._request("POST", f"/graphs/{graph_id}", graph_to_wire(graph))

    def mutate_graph(self, graph_id: str, ops: list) -> dict:
        """Apply one mutation batch to a served graph (one version bump).

        ``ops`` use the delta op alphabet: ``("add_vertex", v, attr[, label])``,
        ``("remove_vertex", v)``, ``("add_edge", u, v)``,
        ``("remove_edge", u, v)``.  The batch is all-or-nothing server-side.
        Unlike queries, a mutation is not idempotent under the client's
        replay-on-disconnect policy: if the connection dies after the server
        applied the batch, the retry's dry-run rejects the already-applied
        removals with 422 — callers seeing that should reconcile against
        :meth:`graph_info` rather than assume failure.
        """
        return self._request(
            "POST", f"/graphs/{graph_id}/mutations",
            {"mutations": [list(op) for op in ops]},
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def solve(self, graph_id: str, query: FairCliqueQuery,
              tier: str | None = None, *, allow_degraded: bool = False) -> SolveReport:
        """Remote ``session.solve``; the report round-trips the wire format."""
        return SolveReport.from_wire(
            self.solve_raw(graph_id, query, tier, allow_degraded=allow_degraded)
            ["report"]
        )

    def solve_raw(self, graph_id: str, query: FairCliqueQuery,
                  tier: str | None = None, *, allow_degraded: bool = False) -> dict:
        """Like :meth:`solve` but returns the full response envelope
        (``cached``, ``quota_clamped``, ``tier``, ``degraded``, raw
        ``report``).  ``allow_degraded=True`` opts into a heuristic answer
        (flagged ``degraded`` in the envelope) when the exact engine is
        crashing, instead of a 500."""
        extra = {"allow_degraded": True} if allow_degraded else {}
        return self._request(
            "POST", "/solve", self._envelope(graph_id, query, tier, **extra)
        )

    def explain(self, graph_id: str, query: FairCliqueQuery,
                tier: str | None = None) -> QueryPlan:
        """Remote ``session.explain``."""
        payload = self._request(
            "POST", "/explain", self._envelope(graph_id, query, tier)
        )
        return QueryPlan.from_wire(payload["plan"])

    def stream(self, graph_id: str, query: FairCliqueQuery,
               tier: str | None = None) -> Iterator[Incumbent]:
        """Remote ``session.stream``: lazy NDJSON incumbents, final last."""
        for line in self._request_lines(
            "/stream", self._envelope(graph_id, query, tier)
        ):
            yield Incumbent.from_wire(line)

    def enumerate(self, graph_id: str, query: FairCliqueQuery,
                  limit: int | None = None) -> Iterator[frozenset]:
        """Remote ``session.enumerate``: lazy maximal fair cliques."""
        extra = {} if limit is None else {"limit": limit}
        for line in self._request_lines(
            "/enumerate", self._envelope(graph_id, query, **extra)
        ):
            if line.get("done"):
                return
            yield frozenset(line["clique"])
