"""A minimal asyncio HTTP/1.1 layer — just enough for the service tier.

The target environment is stdlib-only, so the server speaks a deliberately
small slice of HTTP/1.1 over ``asyncio`` streams:

* one request per connection (every response carries ``Connection: close``),
  which keeps the state machine trivial and plays fine with ``http.client``,
  ``curl``, and load generators;
* bodies are read via ``Content-Length`` (no chunked *requests*);
* responses either carry a ``Content-Length`` or stream close-delimited —
  the NDJSON/SSE endpoints write lines as events arrive and delimit the
  body by closing the connection, which every HTTP/1.x client understands.

Nothing here knows about fair cliques; :mod:`repro.service.app` supplies the
routing and handlers.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard caps keeping a malformed or hostile request from ballooning memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """A request-level failure that maps directly onto a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HTTPRequest:
    """One parsed request: method, split path, query params, headers, body."""

    method: str
    path: str
    params: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def segments(self) -> tuple[str, ...]:
        """Path split on ``/`` with empties dropped (``/graphs/g1`` → ``("graphs", "g1")``)."""
        return tuple(part for part in self.path.split("/") if part)

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_request(reader: asyncio.StreamReader) -> HTTPRequest | None:
    """Parse one request off ``reader``; ``None`` on a clean EOF (no request).

    Raises :class:`HTTPError` on malformed input so the caller can answer
    with the right status before closing.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # client connected and left: not an error
        raise HTTPError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HTTPError(413, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HTTPError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    request_parts = lines[0].split(" ")
    if len(request_parts) != 3:
        raise HTTPError(400, f"malformed request line {lines[0]!r}")
    method, target, version = request_parts
    if not version.startswith("HTTP/1."):
        raise HTTPError(400, f"unsupported protocol {version!r}")

    split = urlsplit(target)
    params = {key: value for key, value in parse_qsl(split.query)}

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HTTPError(400, f"bad Content-Length {length_header!r}") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise HTTPError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HTTPError(400, "request body shorter than Content-Length") from None
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise HTTPError(400, "chunked request bodies are not supported")

    return HTTPRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        params=params,
        headers=headers,
        body=body,
    )


def _head(status: int, content_type: str, extra: dict[str, str] | None = None,
          length: int | None = None) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> None:
    """Write one complete (Content-Length delimited) response."""
    writer.write(_head(status, content_type, extra_headers, length=len(body)))
    writer.write(body)
    await writer.drain()


async def start_streaming_response(
    writer: asyncio.StreamWriter,
    status: int = 200,
    content_type: str = "application/x-ndjson",
    extra_headers: dict[str, str] | None = None,
) -> None:
    """Write the head of a close-delimited streaming response.

    The caller then writes body chunks directly and closes the connection to
    end the stream — the absence of ``Content-Length`` plus ``Connection:
    close`` makes the body EOF-delimited per HTTP/1.1 §6.3.
    """
    writer.write(_head(status, content_type, extra_headers, length=None))
    await writer.drain()
