"""Scaled-down synthetic stand-ins for the paper's six evaluation datasets.

The original evaluation uses six real graphs with up to 44.6 million edges
(Table I).  A pure-Python implementation cannot sweep graphs of that size
inside benchmark loops, so each dataset is replaced by a generator that keeps
the *character* of the original at a few thousand edges:

===========  ======================  ==========================================
paper graph  character               stand-in construction
===========  ======================  ==========================================
Themarker    dense social network    power-law + strong triangle closure, dense
Google       sparse web graph        power-law, weak clustering
DBLP         collaboration network   union of dense author communities
Flixster     sparse social network   power-law, medium clustering
Pokec        large social network    largest stand-in, power-law + communities
Aminer       collaboration, real     communities + gender-like skewed attributes
             gender attributes
===========  ======================  ==========================================

Each stand-in has a handful of *planted fair cliques* so that relative fair
cliques exist across the paper's ``k`` ranges, which keeps every experiment's
qualitative shape (who wins, how curves move with ``k``) meaningful.
Attributes are assigned uniformly at random — the paper's own protocol for the
originally non-attributed graphs — except Aminer, whose stand-in uses a
60/40 split to mimic a real gender attribute.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.exceptions import DatasetError
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.generators import (
    community_graph,
    planted_fair_cliques_graph,
    powerlaw_cluster_graph,
    quasi_clique_blobs,
    skewed_attributes,
    uniform_attributes,
)

GraphFactory = Callable[[float], AttributedGraph]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata and generator for one dataset stand-in.

    Attributes
    ----------
    name:
        Paper dataset name the stand-in replaces.
    description:
        Short description of the original graph.
    factory:
        Callable mapping a scale factor (1.0 = default benchmark size) to a
        generated :class:`AttributedGraph`.
    k_values:
        The ``k`` sweep used in the paper's figures for this dataset.
    default_k / default_delta:
        Default parameters (Section VI-A).
    delta_values:
        The ``delta`` sweep ([1, 5] for every dataset).
    real_attributes:
        True when the original dataset has real (not generated) attributes.
    """

    name: str
    description: str
    factory: GraphFactory
    k_values: tuple[int, ...]
    default_k: int
    default_delta: int
    delta_values: tuple[int, ...] = (1, 2, 3, 4, 5)
    real_attributes: bool = False
    extra: dict = field(default_factory=dict)

    def load(self, scale: float = 1.0) -> AttributedGraph:
        """Generate the stand-in graph at the requested scale."""
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        return self.factory(scale)


def _scaled(value: int, scale: float, minimum: int = 20) -> int:
    return max(minimum, int(round(value * scale)))


def _plant_cliques(
    graph: AttributedGraph,
    main_split: tuple[int, int],
    seed: int,
    blobs: tuple[int, int, float] = (2, 75, 0.4),
) -> AttributedGraph:
    """Plant a flagship fair clique, smaller cliques, and dense quasi-clique blobs.

    The flagship split is chosen so the maximum fair clique size of each
    stand-in roughly matches the size the paper reports for that dataset in
    Fig. 8 (18-31 vertices depending on the graph); the smaller cliques keep
    solutions available across the whole ``k`` sweep.  The quasi-clique blobs
    (``(count, size, density)``) reproduce the hard dense regions of the real
    graphs: they survive the reductions for moderate ``k`` but contain no
    large clique, so they separate the search configurations of Figs. 6-9 —
    bound-equipped solvers dismiss them, the plain solver has to explore them.
    """
    specs = [main_split, (8, 7), (6, 6), (5, 4)]
    planted = planted_fair_cliques_graph(graph, specs, seed=seed)
    blob_count, blob_size, blob_density = blobs
    return quasi_clique_blobs(
        planted, num_blobs=blob_count, blob_size=blob_size,
        edge_probability=blob_density, seed=seed + 1,
    )


def _themarker(scale: float) -> AttributedGraph:
    background = powerlaw_cluster_graph(
        _scaled(900, scale), edges_per_vertex=8, triangle_probability=0.85,
        seed=11, assigner=uniform_attributes(),
    )
    return _plant_cliques(background, (14, 13), seed=11)


def _google(scale: float) -> AttributedGraph:
    background = powerlaw_cluster_graph(
        _scaled(1400, scale), edges_per_vertex=4, triangle_probability=0.35,
        seed=22, assigner=uniform_attributes(),
    )
    return _plant_cliques(background, (16, 15), seed=22)


def _dblp(scale: float) -> AttributedGraph:
    background = community_graph(
        num_communities=_scaled(60, scale, minimum=4), community_size=14,
        intra_probability=0.75, inter_edges=3, seed=33,
        assigner=uniform_attributes(),
    )
    return _plant_cliques(background, (9, 9), seed=33)


def _flixster(scale: float) -> AttributedGraph:
    background = powerlaw_cluster_graph(
        _scaled(1600, scale), edges_per_vertex=5, triangle_probability=0.5,
        seed=44, assigner=uniform_attributes(),
    )
    return _plant_cliques(background, (12, 12), seed=44)


def _pokec(scale: float) -> AttributedGraph:
    background = powerlaw_cluster_graph(
        _scaled(2000, scale), edges_per_vertex=7, triangle_probability=0.6,
        seed=55, assigner=uniform_attributes(),
    )
    return _plant_cliques(background, (14, 14), seed=55)


def _aminer(scale: float) -> AttributedGraph:
    background = community_graph(
        num_communities=_scaled(40, scale, minimum=4), community_size=12,
        intra_probability=0.8, inter_edges=2, seed=66,
        assigner=skewed_attributes(0.6, "male", "female"),
    )
    planted = planted_fair_cliques_graph(
        background, [(15, 15), (9, 8), (7, 6), (5, 5)],
        seed=66, attribute_a="male", attribute_b="female",
    )
    return quasi_clique_blobs(
        planted, num_blobs=2, blob_size=45, edge_probability=0.45,
        seed=67, attribute_a="male", attribute_b="female",
    )


DATASETS: dict[str, DatasetSpec] = {
    "Themarker": DatasetSpec(
        name="Themarker",
        description="Dense social network (69k vertices, 3.3M edges in the paper)",
        factory=_themarker,
        k_values=(2, 3, 4, 5, 6),
        default_k=6,
        default_delta=3,
    ),
    "Google": DatasetSpec(
        name="Google",
        description="Web graph (876k vertices, 8.6M edges in the paper)",
        factory=_google,
        k_values=(5, 6, 7, 8, 9),
        default_k=7,
        default_delta=4,
    ),
    "DBLP": DatasetSpec(
        name="DBLP",
        description="Collaboration network (1.8M vertices, 16.7M edges in the paper)",
        factory=_dblp,
        k_values=(5, 6, 7, 8, 9),
        default_k=7,
        default_delta=4,
    ),
    "Flixster": DatasetSpec(
        name="Flixster",
        description="Social network (2.5M vertices, 15.8M edges in the paper)",
        factory=_flixster,
        k_values=(2, 3, 4, 5, 6),
        default_k=3,
        default_delta=3,
    ),
    "Pokec": DatasetSpec(
        name="Pokec",
        description="Social network (1.6M vertices, 44.6M edges in the paper)",
        factory=_pokec,
        k_values=(3, 4, 5, 6, 7),
        default_k=4,
        default_delta=4,
    ),
    "Aminer": DatasetSpec(
        name="Aminer",
        description="Collaboration network with real gender attributes (423k vertices)",
        factory=_aminer,
        k_values=(4, 5, 6, 7, 8),
        default_k=6,
        default_delta=4,
        real_attributes=True,
    ),
}

GENERATED_ATTRIBUTE_DATASETS: tuple[str, ...] = (
    "Themarker", "Google", "DBLP", "Flixster", "Pokec",
)
REAL_ATTRIBUTE_DATASETS: tuple[str, ...] = ("Aminer",)


def dataset_names() -> tuple[str, ...]:
    """Names of every registered dataset stand-in (paper order)."""
    return tuple(DATASETS)


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    for key, spec in DATASETS.items():
        if key.lower() == name.lower():
            return spec
    raise DatasetError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")


def load_dataset(name: str, scale: float = 1.0) -> AttributedGraph:
    """Generate the stand-in graph for ``name`` at the requested scale."""
    return get_dataset(name).load(scale)


def dataset_table(scale: float = 1.0, names: Sequence[str] | None = None) -> list[dict]:
    """Summaries mirroring the paper's Table I for the generated stand-ins."""
    rows = []
    for name in names or dataset_names():
        spec = get_dataset(name)
        graph = spec.load(scale)
        rows.append(
            {
                "dataset": spec.name,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "d_max": graph.max_degree(),
                "attributes": graph.attribute_histogram(),
                "description": spec.description,
            }
        )
    return rows
