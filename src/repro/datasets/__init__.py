"""Dataset stand-ins mirroring the paper's evaluation graphs and case studies."""

from repro.datasets.case_studies import (
    CASE_STUDIES,
    CaseStudySpec,
    build_case_study_graph,
    case_study_names,
    get_case_study,
)
from repro.datasets.registry import (
    DATASETS,
    GENERATED_ATTRIBUTE_DATASETS,
    REAL_ATTRIBUTE_DATASETS,
    DatasetSpec,
    dataset_names,
    dataset_table,
    get_dataset,
    load_dataset,
)

__all__ = [
    "CASE_STUDIES",
    "CaseStudySpec",
    "build_case_study_graph",
    "case_study_names",
    "get_case_study",
    "DATASETS",
    "GENERATED_ATTRIBUTE_DATASETS",
    "REAL_ATTRIBUTE_DATASETS",
    "DatasetSpec",
    "dataset_names",
    "dataset_table",
    "get_dataset",
    "load_dataset",
]
