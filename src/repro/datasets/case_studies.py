"""Labelled case-study graphs (Section VI-C).

The paper closes with four case studies — Aminer (gender), DBAI (DB vs. AI
researchers), NBA (U.S. vs. overseas players), and IMDB (senior vs. junior
film artists) — showing that the maximum relative fair clique found with
``k = 5``, ``delta = 3`` is a large, well-connected, attribute-balanced team.

The original graphs are built from proprietary or large public dumps; the
stand-ins here are small labelled graphs with a planted "flagship team"
(a fair clique of realistic size and balance), a few overlapping smaller
collaborations, and background noise.  They exercise exactly the same code
path: the search must dig the balanced team out of a graph whose raw maximum
clique is *not* fair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.attributed_graph import AttributedGraph


@dataclass(frozen=True)
class CaseStudySpec:
    """Metadata for one case study."""

    name: str
    attribute_a: str
    attribute_b: str
    description: str
    expected_team_size: int
    k: int = 5
    delta: int = 3


CASE_STUDIES: dict[str, CaseStudySpec] = {
    "Aminer": CaseStudySpec(
        name="Aminer",
        attribute_a="male",
        attribute_b="female",
        description="HCI research collaboration with balanced gender representation",
        expected_team_size=29,
    ),
    "DBAI": CaseStudySpec(
        name="DBAI",
        attribute_a="DB",
        attribute_b="AI",
        description="Researchers spanning databases and artificial intelligence",
        expected_team_size=20,
    ),
    "NBA": CaseStudySpec(
        name="NBA",
        attribute_a="US",
        attribute_b="Overseas",
        description="NBA players mixing U.S. and international stars",
        expected_team_size=12,
    ),
    "IMDB": CaseStudySpec(
        name="IMDB",
        attribute_a="Senior",
        attribute_b="Junior",
        description="Film production team mixing senior and junior artists",
        expected_team_size=10,
        # The paper reports a 6 senior + 4 junior team for k = 5, which the
        # relative-fair-clique definition itself would reject (4 < k); the
        # stand-in keeps the 6+4 team and lowers k to 4 so the reported team
        # is actually feasible under Definition 1.
        k=4,
    ),
}


def _team_labels(prefix: str, count: int) -> list[str]:
    return [f"{prefix} {index + 1}" for index in range(count)]


def build_case_study_graph(name: str, seed: int = 0) -> AttributedGraph:
    """Build the labelled stand-in graph for one case study.

    The graph contains:

    * the *flagship team*: a clique whose attribute split matches the paper's
      reported maximum fair clique for that case study (e.g. 13 + 16 for
      Aminer, 7 + 5 for NBA);
    * one larger but *unbalanced* clique, so the plain maximum clique is not a
      valid fair clique and the fairness machinery actually matters;
    * several small collaborations overlapping the flagship team;
    * random background vertices and edges.
    """
    spec = get_case_study(name)
    rng = random.Random(seed + hash(spec.name) % 1000)
    graph = AttributedGraph()
    next_id = 0

    def add_member(attribute: str, label: str) -> int:
        nonlocal next_id
        graph.add_vertex(next_id, attribute, label=label)
        next_id += 1
        return next_id - 1

    splits = {
        "Aminer": (13, 16),
        "DBAI": (9, 11),
        "NBA": (7, 5),
        "IMDB": (6, 4),
    }
    count_a, count_b = splits[spec.name]

    flagship: list[int] = []
    for label in _team_labels(f"{spec.attribute_a} member", count_a):
        flagship.append(add_member(spec.attribute_a, label))
    for label in _team_labels(f"{spec.attribute_b} member", count_b):
        flagship.append(add_member(spec.attribute_b, label))
    for i, u in enumerate(flagship):
        for v in flagship[i + 1:]:
            graph.add_edge(u, v)

    # A larger but one-sided clique: tempting for a plain max-clique solver,
    # useless for the fair model (too few members of the other attribute).
    unbalanced: list[int] = []
    for label in _team_labels(f"{spec.attribute_a} insider", count_a + count_b + 2):
        unbalanced.append(add_member(spec.attribute_a, label))
    for label in _team_labels(f"{spec.attribute_b} guest", max(1, spec.k - 2)):
        unbalanced.append(add_member(spec.attribute_b, label))
    for i, u in enumerate(unbalanced):
        for v in unbalanced[i + 1:]:
            graph.add_edge(u, v)

    # Small overlapping collaborations around the flagship team.
    for _ in range(6):
        core = rng.sample(flagship, 3)
        extras = []
        for index in range(rng.randint(2, 4)):
            attribute = spec.attribute_a if index % 2 == 0 else spec.attribute_b
            extras.append(add_member(attribute, f"{spec.name} collaborator {next_id}"))
        members = core + extras
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)

    # Sparse background noise.
    background: list[int] = []
    for index in range(40):
        attribute = spec.attribute_a if rng.random() < 0.5 else spec.attribute_b
        background.append(add_member(attribute, f"{spec.name} background {index}"))
    population = background + flagship + unbalanced
    for vertex in background:
        for target in rng.sample(population, 4):
            if vertex != target and not graph.has_edge(vertex, target):
                graph.add_edge(vertex, target)
    return graph


def get_case_study(name: str) -> CaseStudySpec:
    """Look up a case-study spec by (case-insensitive) name."""
    for key, spec in CASE_STUDIES.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(f"unknown case study {name!r}; available: {sorted(CASE_STUDIES)}")


def case_study_names() -> tuple[str, ...]:
    """Names of the four case studies in paper order."""
    return tuple(CASE_STUDIES)
