#!/usr/bin/env python3
"""CI durability smoke: SIGKILL a real server, restart it, lose nothing acked.

This drives the deployment path (``repro serve --data-dir`` in a
subprocess) through the two crashes the WAL + checkpoint design exists
for, with ``REPRO_FAULT_PLAN`` freezing the server at exactly the wrong
moment::

    PYTHONPATH=src python scripts/crash_restart_smoke.py

Scenarios (any failure exits non-zero):

1. **SIGKILL mid-upload**: a ``wal.append`` sleep fault stalls the fifth
   graph's WAL write; the server is SIGKILLed inside it and garbage bytes
   are stamped onto the log tail for good measure.  The restarted server
   must serve exactly the four acknowledged graphs, report the torn tail
   it truncated, and solve normally.
2. **SIGKILL mid-solve**: a ``shard.run`` sleep fault slows a ``workers=2``
   exact solve so shard checkpoints land on disk; the server is SIGKILLed
   once a checkpoint holds at least one completed shard.  After restart the
   identical query must *resume* — ``resumed: true``, ``shards_skipped >=
   1`` — and return exactly the from-scratch (serial) answer; success then
   discards the checkpoint.
3. **SIGKILL mid-mutation-batch**: after an upload and one acknowledged
   mutation batch, a ``wal.append`` sleep fault stalls the *delta record*
   of a second batch and the server is SIGKILLed inside the write.  The
   restarted replay must land on exactly the pre-batch or the post-batch
   graph — version, n, and m from one state or the other, never a torn
   mix — because the delta is a single checksummed WAL record written
   before the live graph mutates.
4. SIGINT drains the final server with exit code 0.
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.api import FairCliqueQuery                    # noqa: E402
from repro.graph.generators import community_graph       # noqa: E402
from repro.resilience.faults import ENV_PLAN, FaultPlan  # noqa: E402
from repro.service import ServiceClient, ServiceError    # noqa: E402

QUERY = FairCliqueQuery(model="relative", k=2, delta=1)
PARALLEL_QUERY = FairCliqueQuery(model="relative", k=2, delta=1, workers=2)

#: Scenario 1: stall the WAL append of the fifth graph record (the tail
#: holds 4 records when it fires) long enough to SIGKILL the server inside.
UPLOAD_STALL_PLAN = FaultPlan(specs=(
    {"point": "wal.append", "action": "sleep", "delay": 30.0,
     "when": {"log": "graphs", "records": 4}, "times": 1},
), seed=7)

#: Scenario 2: make every shard slow enough that checkpoints hit the disk
#: while the solve is demonstrably still in flight.
SLOW_SHARD_PLAN = FaultPlan(specs=(
    {"point": "shard.run", "action": "sleep", "delay": 1.5,
     "times": None, "scope": "worker"},
), seed=7)

#: Scenario 3: stall the second mutation batch's delta append (the graphs
#: log holds the upload + the first batch's delta when it fires).
MUTATION_STALL_PLAN = FaultPlan(specs=(
    {"point": "wal.append", "action": "sleep", "delay": 30.0,
     "when": {"log": "graphs", "records": 2}, "times": 1},
), seed=7)


def chaos_graph():
    """Three dense components: three shards with real search work in each."""
    return community_graph(3, 16, intra_probability=0.6, inter_edges=0, seed=21)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def boot(data_dir: Path, plan: FaultPlan | None) -> tuple[subprocess.Popen, ServiceClient]:
    port = free_port()
    env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
    if plan is not None:
        env[ENV_PLAN] = plan.to_json()
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--data-dir", str(data_dir)],
        cwd=REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    return server, ServiceClient(f"http://127.0.0.1:{port}", retries=0)


def wait_for_health(client: ServiceClient, deadline_s: float = 30.0) -> dict:
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        try:
            return client.healthz()
        except (OSError, ServiceError):
            time.sleep(0.2)
    raise RuntimeError("server did not become healthy within the deadline")


def check(label: str, condition: bool, detail: str = "") -> None:
    if not condition:
        raise AssertionError(f"{label} failed {detail}".strip())
    print(f"[crash] {label}: ok {detail}".rstrip(), flush=True)


def hard_kill(server: subprocess.Popen) -> None:
    server.send_signal(signal.SIGKILL)
    server.wait(timeout=10)


def dump_on_failure(server: subprocess.Popen) -> None:
    server.kill()
    try:
        output, _ = server.communicate(timeout=10)
    except (ValueError, OSError):  # pipes already gone
        output = None
    print("[crash] server output on failure:\n" + (output or "<none>"),
          file=sys.stderr, flush=True)


def scenario_upload_crash() -> None:
    """SIGKILL mid-upload: only acknowledged graphs survive the restart."""
    data_dir = Path(tempfile.mkdtemp(prefix="repro-crash-upload-"))
    graph = chaos_graph()
    server, client = boot(data_dir, UPLOAD_STALL_PLAN)
    try:
        wait_for_health(client)
        for index in range(4):
            client.upload_graph(f"g{index}", graph)
        check("4 uploads acked", set(client.graphs()) >= {"g0", "g1", "g2", "g3"})

        # The fifth upload stalls inside the WAL append; fire it from a
        # helper thread and SIGKILL the server mid-write.
        def doomed_upload():
            try:
                client.upload_graph("g4", graph)
            except (OSError, ServiceError):
                pass  # the server died under this request, as planned

        uploader = threading.Thread(target=doomed_upload, daemon=True)
        uploader.start()
        time.sleep(1.5)  # let the request reach the stalled append
        hard_kill(server)
        uploader.join(timeout=10)
        check("server SIGKILLed mid-upload", server.returncode != 0)
    except BaseException:
        dump_on_failure(server)
        raise

    # Stamp garbage onto the tail: the crash-torn-write worst case.
    with open(data_dir / "graphs.wal", "ab") as tail:
        tail.write(b'{"lsn": 99, "type": "graph.put", "data": {"half a rec')

    server, client = boot(data_dir, plan=None)
    try:
        health = wait_for_health(client)
        recovery = health["durability"]["recovery"]
        check("acked graphs recovered", recovery["graphs_recovered"] == 4,
              f"recovered={recovery['graphs_recovered']}")
        check("torn tail truncated", recovery["truncated_bytes"] > 0,
              f"bytes={recovery['truncated_bytes']}")
        served = set(client.graphs())
        check("unacked graph absent", "g4" not in served, str(sorted(served)))
        answer = client.solve_raw("g0", QUERY, tier="unlimited")
        check("restarted server solves", answer["report"]["optimal"],
              f"size={len(answer['report']['clique'])}")
        server.send_signal(signal.SIGINT)
        check("upload-crash drain", server.wait(timeout=30) == 0)
    except BaseException:
        dump_on_failure(server)
        raise


def wait_for_checkpoint(data_dir: Path, deadline_s: float = 60.0) -> dict:
    """Poll until a checkpoint holding at least one completed shard lands."""
    checkpoints = data_dir / "checkpoints"
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        for path in checkpoints.glob("*.ckpt"):
            try:
                state = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue  # mid-replace; the next poll sees the full file
            if state.get("shards"):
                return state
        time.sleep(0.05)
    raise RuntimeError("no shard checkpoint appeared within the deadline")


def scenario_solve_crash() -> None:
    """SIGKILL mid-solve: the restarted server resumes from the checkpoint."""
    data_dir = Path(tempfile.mkdtemp(prefix="repro-crash-solve-"))
    graph = chaos_graph()
    server, client = boot(data_dir, SLOW_SHARD_PLAN)
    try:
        wait_for_health(client)
        client.upload_graph("chaos", graph)

        def doomed_solve():
            try:
                client.solve_raw("chaos", PARALLEL_QUERY, tier="unlimited")
            except (OSError, ServiceError):
                pass  # the server died under this request, as planned

        solver = threading.Thread(target=doomed_solve, daemon=True)
        solver.start()
        state = wait_for_checkpoint(data_dir)
        hard_kill(server)
        solver.join(timeout=10)
        check("server SIGKILLed mid-solve",
              0 < len(state["shards"]) < 3,
              f"checkpointed shards={sorted(state['shards'])}")
    except BaseException:
        dump_on_failure(server)
        raise

    server, client = boot(data_dir, plan=None)
    try:
        health = wait_for_health(client)
        recovery = health["durability"]["recovery"]
        check("checkpoint survived the crash", recovery["checkpoints_found"] >= 1)

        serial = client.solve_raw("chaos", QUERY, tier="unlimited")
        reference = len(serial["report"]["clique"])

        resumed = client.solve_raw("chaos", PARALLEL_QUERY, tier="unlimited")
        report = resumed["report"]
        telemetry = report["metadata"]["parallel"]
        check("solve resumed from checkpoint", telemetry.get("resumed") is True)
        check("checkpointed shards skipped",
              telemetry.get("shards_skipped", 0) >= 1,
              f"skipped={telemetry.get('shards_skipped')}")
        check("resume parity with from-scratch",
              len(report["clique"]) == reference and report["optimal"],
              f"size={len(report['clique'])} reference={reference}")

        metrics = client.metrics()
        check("checkpoint discarded after success",
              metrics["durability"]["checkpoints"] == 0)
        server.send_signal(signal.SIGINT)
        check("solve-crash drain", server.wait(timeout=30) == 0)
    except BaseException:
        dump_on_failure(server)
        raise


def scenario_mutation_crash() -> None:
    """SIGKILL mid-mutation-batch: replay lands pre- or post-batch, not torn."""
    data_dir = Path(tempfile.mkdtemp(prefix="repro-crash-mutate-"))
    graph = chaos_graph()
    edges = sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1])))
    server, client = boot(data_dir, MUTATION_STALL_PLAN)
    try:
        wait_for_health(client)
        client.upload_graph("g", graph)
        first = client.mutate_graph("g", [["remove_edge", *edges[0]]])
        check("first batch acked", first["applied"] == 1,
              f"version={first['version']}")
        pre = client.graph_info("g")

        # The doomed batch stalls inside its delta's WAL append; fire it
        # from a helper thread and SIGKILL the server mid-write.
        def doomed_batch():
            try:
                client.mutate_graph("g", [
                    ["remove_edge", *edges[1]],
                    ["add_vertex", "crashed", "a"],
                ])
            except (OSError, ServiceError):
                pass  # the server died under this request, as planned

        mutator = threading.Thread(target=doomed_batch, daemon=True)
        mutator.start()
        time.sleep(1.5)  # let the request reach the stalled append
        hard_kill(server)
        mutator.join(timeout=10)
        check("server SIGKILLed mid-batch", server.returncode != 0)
    except BaseException:
        dump_on_failure(server)
        raise

    server, client = boot(data_dir, plan=None)
    try:
        wait_for_health(client)
        info = client.graph_info("g")
        pre_state = (pre["version"], pre["n"], pre["m"])
        # The doomed batch removed one edge and added one vertex.
        post_state = (pre["version"] + 1, pre["n"] + 1, pre["m"] - 1)
        replayed = (info["version"], info["n"], info["m"])
        check("replay landed pre- or post-batch, never torn",
              replayed in (pre_state, post_state),
              f"replayed={replayed} pre={pre_state} post={post_state}")
        answer = client.solve_raw("g", QUERY, tier="unlimited")
        check("restarted server solves the mutated graph",
              answer["report"]["optimal"],
              f"size={len(answer['report']['clique'])}")
        server.send_signal(signal.SIGINT)
        check("mutation-crash drain", server.wait(timeout=30) == 0)
    except BaseException:
        dump_on_failure(server)
        raise


def main() -> int:
    scenario_upload_crash()
    scenario_solve_crash()
    scenario_mutation_crash()
    print("[crash] crash/restart smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
