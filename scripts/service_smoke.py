#!/usr/bin/env python3
"""CI smoke test for the service tier: boot the real CLI server, drive it.

Unlike the in-process e2e tests, this exercises the *deployment* path — the
``repro serve`` subcommand in a subprocess, a real TCP port, a graceful
SIGINT shutdown — and the full request alphabet against a preloaded
dataset::

    PYTHONPATH=src python scripts/service_smoke.py

Steps (any failure exits non-zero):

1. boot ``python -m repro serve --preload DBLP --port 0``-style on a free
   port and wait for ``/healthz``;
2. ``POST /solve`` twice — the second must be a result-cache hit with an
   identical report;
3. ``POST /stream`` — NDJSON incumbent events, final event carries the
   solve-parity report;
4. ``POST /explain`` — a resolved query plan;
5. ``POST /enumerate`` — maximal fair cliques with a terminating summary
   line;
6. ``GET /metrics`` — request counters, latency histograms, and the
   asserted cache hit all visible;
7. SIGINT → the server drains and exits 0.
"""

from __future__ import annotations

import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.api import FairCliqueQuery                    # noqa: E402
from repro.service import ServiceClient, ServiceError   # noqa: E402

DATASET = "DBLP"
SCALE = 0.3
QUERY = FairCliqueQuery(model="relative", k=3, delta=1)
ENUM_QUERY = FairCliqueQuery(model="relative", k=2, delta=1, task="enumerate")


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_for_health(client: ServiceClient, deadline_s: float = 30.0) -> dict:
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        try:
            return client.healthz()
        except (OSError, ServiceError):
            time.sleep(0.2)
    raise RuntimeError("server did not become healthy within the deadline")


def check(label: str, condition: bool, detail: str = "") -> None:
    if not condition:
        raise AssertionError(f"{label} failed {detail}".strip())
    print(f"[smoke] {label}: ok {detail}".rstrip(), flush=True)


def main() -> int:
    port = free_port()
    command = [
        sys.executable, "-m", "repro", "serve",
        "--preload", DATASET, "--scale", str(SCALE), "--port", str(port),
    ]
    print(f"[smoke] booting: {' '.join(command)}", flush=True)
    server = subprocess.Popen(
        command, cwd=REPO, env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    client = ServiceClient(f"http://127.0.0.1:{port}")
    graph_id = DATASET.lower()
    try:
        health = wait_for_health(client)
        check("healthz", health["status"] == "ok"
              and graph_id in health["graphs"], str(health["graphs"]))

        cold = client.solve_raw(graph_id, QUERY)
        check("solve (cold)", not cold["cached"]
              and len(cold["report"]["clique"]) > 0,
              f"size={len(cold['report']['clique'])}")

        warm = client.solve_raw(graph_id, QUERY)
        check("solve (result-cached)", warm["cached"]
              and warm["report"] == cold["report"])

        events = list(client.stream(graph_id, QUERY))
        check("stream", bool(events) and events[-1].final
              and events[-1].report.size == len(cold["report"]["clique"]),
              f"events={len(events)}")

        # unlimited tier: the default tier would clamp time_limit into the
        # plan's query, which is correct but not what we compare against.
        plan = client.explain(graph_id, QUERY, tier="unlimited")
        check("explain", plan.algorithm != "" and plan.query == QUERY,
              plan.algorithm)

        cliques = list(client.enumerate(graph_id, ENUM_QUERY, limit=5))
        check("enumerate", all(len(clique) > 0 for clique in cliques),
              f"cliques={len(cliques)}")

        metrics = client.metrics()
        http_stats = metrics["http"]
        check("metrics counters",
              http_stats["requests_by_endpoint"].get("POST /solve", 0) >= 2
              and "POST /solve" in http_stats["latency_by_endpoint"])
        check("metrics cache hit", metrics["result_cache"]["hits"] >= 1,
              f"hits={metrics['result_cache']['hits']}")
        check("metrics sessions", metrics["sessions"]["open_sessions"] >= 1)

        server.send_signal(signal.SIGINT)
        code = server.wait(timeout=30)
        check("graceful shutdown", code == 0, f"exit={code}")
    except BaseException:
        server.kill()
        output, _ = server.communicate(timeout=10)
        print("[smoke] server output on failure:\n" + (output or "<none>"),
              file=sys.stderr, flush=True)
        raise
    print("[smoke] service smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
