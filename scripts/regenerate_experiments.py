"""Regenerate every paper experiment and write a consolidated markdown report.

This is the "one command" path for refreshing the measured side of
EXPERIMENTS.md after a code change::

    python scripts/regenerate_experiments.py --scale 0.35 --output experiments_report.md

It runs the full battery from ``repro.experiments.runner`` (Figs. 4-9,
Table II, and the case studies), prints each formatted table as it completes,
and writes a single markdown file containing every table plus the dataset
summary, so paper-vs-measured comparisons can be made without re-running
anything.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.datasets.registry import dataset_table
from repro.experiments.reporting import format_table
from repro.experiments.runner import experiment_ids, run_experiment


def build_report(scale: float, experiments: list[str]) -> str:
    """Run the requested experiments and return the consolidated markdown text."""
    sections = ["# Regenerated experiment report", ""]
    sections.append(f"Dataset scale factor: {scale}")
    sections.append("")
    sections.append("## Dataset stand-ins")
    sections.append("")
    sections.append("```")
    sections.append(format_table(
        dataset_table(scale=scale),
        columns=["dataset", "n", "m", "d_max", "attributes"],
    ))
    sections.append("```")
    for experiment in experiments:
        started = time.perf_counter()
        outcome = run_experiment(experiment, scale=scale)
        elapsed = time.perf_counter() - started
        print(f"[{experiment}] finished in {elapsed:.1f}s "
              f"({len(outcome.rows)} rows)", file=sys.stderr)
        sections.append("")
        sections.append(f"## {experiment}")
        sections.append("")
        sections.append(f"Wall time: {elapsed:.1f}s")
        sections.append("")
        sections.append("```")
        sections.append(outcome.report)
        sections.append("```")
    return "\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.35,
                        help="dataset scale factor (default matches the benchmark harness)")
    parser.add_argument("--output", default="experiments_report.md",
                        help="path of the markdown report to write")
    parser.add_argument("--experiments", nargs="*", default=None,
                        help=f"subset of experiments to run (default: all of {experiment_ids()})")
    args = parser.parse_args(argv)

    experiments = list(args.experiments or experiment_ids())
    unknown = [name for name in experiments if name not in experiment_ids()]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}")

    report = build_report(args.scale, experiments)
    output = Path(args.output)
    output.write_text(report, encoding="utf-8")
    print(f"report written to {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
