#!/usr/bin/env python3
"""CI chaos smoke: a real server under an armed fault plan stays correct.

This drives the deployment path (``repro serve`` in a subprocess) with
``REPRO_FAULT_PLAN`` set, so every resilience layer is exercised where it
actually runs — forked pool workers, the asyncio connection handler, the
per-graph breaker board — not just in-process test doubles::

    PYTHONPATH=src python scripts/chaos_smoke.py

Scenarios (any failure exits non-zero):

1. **Worker kill mid-solve**: the plan hard-kills (``os._exit``) the worker
   executing shard 0's first attempt.  A ``workers=2`` solve must still
   return exactly the serial answer, with ``pool_respawns >= 1`` and
   ``shards_retried >= 1`` in the report's parallel telemetry.
2. **Circuit breaker**: the ``poison`` graph's solves crash twice → two
   500s → the threshold-2 breaker opens (503 + ``Retry-After``), /healthz
   reports ``degraded``; after the reset window the half-open probe
   succeeds (the fault budget is spent) and the breaker closes.
3. **Graceful degradation**: the ``flaky`` graph crashes on every exact
   solve, but ``allow_degraded`` requests get the heuristic answer flagged
   ``degraded: true`` instead of a 500.
4. **Dropped connection mid-stream**: the plan severs the stream before its
   second event; the server counts the disconnect, keeps serving.
5. Resilience counters on ``/metrics`` all moved; SIGINT drains exit 0.
"""

from __future__ import annotations

import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.api import FairCliqueQuery                    # noqa: E402
from repro.graph.generators import community_graph       # noqa: E402
from repro.resilience.faults import ENV_PLAN, FaultPlan  # noqa: E402
from repro.service import ServiceClient, ServiceError    # noqa: E402

QUERY = FairCliqueQuery(model="relative", k=2, delta=1)

#: The full chaos plan the server boots with.  Counters are per process:
#: the kill spec matches (shard 0, attempt 1) by *context*, so the retry
#: passes no matter which worker inherits which counter.
PLAN = FaultPlan(specs=(
    {"point": "shard.run", "action": "kill",
     "when": {"shard": 0, "attempt": 1}, "times": 1, "scope": "worker"},
    {"point": "service.solve", "action": "raise",
     "when": {"graph": "poison"}, "times": 2},
    {"point": "service.solve", "action": "raise",
     "when": {"graph": "flaky"}, "times": None},
    {"point": "http.stream", "action": "disconnect",
     "when": {"event": 1}, "times": 1},
), seed=7)

BREAKER_RESET_S = 0.5


def chaos_graph():
    """Three dense non-trivial components: three shards the search must
    actually branch over (a graph the heuristic seed solves outright would
    prune every shard and the kill seam would never fire)."""
    return community_graph(3, 16, intra_probability=0.6, inter_edges=0, seed=21)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_for_health(client: ServiceClient, deadline_s: float = 30.0) -> dict:
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        try:
            return client.healthz()
        except (OSError, ServiceError):
            time.sleep(0.2)
    raise RuntimeError("server did not become healthy within the deadline")


def check(label: str, condition: bool, detail: str = "") -> None:
    if not condition:
        raise AssertionError(f"{label} failed {detail}".strip())
    print(f"[chaos] {label}: ok {detail}".rstrip(), flush=True)


def expect_status(client: ServiceClient, status: int, **solve_kwargs) -> ServiceError:
    try:
        client.solve_raw("poison", QUERY, tier="unlimited", **solve_kwargs)
    except ServiceError as error:
        if error.status != status:
            raise AssertionError(
                f"expected HTTP {status}, got {error.status}: {error.message}"
            )
        return error
    raise AssertionError(f"expected HTTP {status}, request succeeded")


def main() -> int:
    port = free_port()
    command = [
        sys.executable, "-m", "repro", "serve", "--port", str(port),
        "--breaker-threshold", "2", "--breaker-reset", str(BREAKER_RESET_S),
    ]
    print(f"[chaos] booting with fault plan: {' '.join(command)}", flush=True)
    server = subprocess.Popen(
        command, cwd=REPO,
        env={
            "PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin",
            ENV_PLAN: PLAN.to_json(),
        },
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    # Retries stay off: this harness asserts on raw statuses (500/503) that
    # a retrying client would paper over.
    client = ServiceClient(f"http://127.0.0.1:{port}", retries=0)
    graph = chaos_graph()
    try:
        health = wait_for_health(client)
        check("healthz", health["status"] == "ok", str(health["status"]))

        for graph_id in ("chaos", "poison", "flaky"):
            client.upload_graph(graph_id, graph)
        check("uploads", set(client.graphs()) >= {"chaos", "poison", "flaky"})

        # -- scenario 1: worker killed mid-solve, exact parity ---------- #
        serial = client.solve_raw("chaos", QUERY, tier="unlimited")
        serial_size = len(serial["report"]["clique"])
        check("serial solve", serial_size > 0 and serial["report"]["optimal"],
              f"size={serial_size}")

        parallel_query = FairCliqueQuery(model="relative", k=2, delta=1, workers=2)
        parallel = client.solve_raw("chaos", parallel_query, tier="unlimited")
        report = parallel["report"]
        telemetry = report["metadata"]["parallel"]
        check("worker-kill parity",
              len(report["clique"]) == serial_size and report["optimal"],
              f"size={len(report['clique'])}")
        check("pool respawned", telemetry["pool_respawns"] >= 1,
              f"respawns={telemetry['pool_respawns']}")
        check("shards retried", telemetry["shards_retried"] >= 1,
              f"retried={telemetry['shards_retried']}")
        check("not degraded", not telemetry["degraded"])

        # -- scenario 2: breaker opens on crashes, then recovers -------- #
        for attempt in (1, 2):
            error = expect_status(client, 500)
        check("poison crashes 500", "injected fault" in error.message)
        error = expect_status(client, 503)
        check("breaker open 503", error.retry_after is not None,
              f"retry_after={error.retry_after}")
        check("healthz degraded",
              client.healthz()["status"] == "degraded",
              str(client.healthz()["breakers_open"]))
        time.sleep(BREAKER_RESET_S + 0.3)
        probe = client.solve_raw("poison", QUERY, tier="unlimited")
        check("half-open probe closes breaker",
              len(probe["report"]["clique"]) == serial_size
              and client.healthz()["status"] == "ok")

        # -- scenario 3: allow_degraded serves the heuristic ------------ #
        degraded = client.solve_raw(
            "flaky", QUERY, tier="unlimited", allow_degraded=True
        )
        check("degraded envelope", degraded.get("degraded") is True,
              degraded.get("degraded_reason", ""))
        check("degraded heuristic answer",
              degraded["report"]["engine"] == "heuristic"
              and len(degraded["report"]["clique"]) > 0,
              f"size={len(degraded['report']['clique'])}")

        # -- scenario 4: dropped connection mid-stream ------------------ #
        events = list(client.stream("chaos", QUERY, tier="unlimited"))
        check("stream truncated by disconnect",
              not any(event.final for event in events),
              f"events={len(events)}")

        # -- scenario 5: resilience telemetry moved --------------------- #
        metrics = client.metrics()
        counters = metrics["http"]["counters"]
        check("solver_crashes counted", counters.get("solver_crashes", 0) >= 3,
              f"crashes={counters.get('solver_crashes')}")
        check("shard_retries counted", counters.get("shard_retries", 0) >= 1)
        check("pool_respawns counted", counters.get("pool_respawns", 0) >= 1)
        check("disconnects counted", counters.get("client_disconnects", 0) >= 1)
        check("degraded counted", counters.get("degraded_responses", 0) >= 1)
        breakers = metrics["breakers"]
        check("breaker telemetry",
              breakers["opened_total"] >= 1 and breakers["rejected_total"] >= 1,
              f"opened={breakers['opened_total']}")

        server.send_signal(signal.SIGINT)
        code = server.wait(timeout=30)
        check("graceful shutdown", code == 0, f"exit={code}")
    except BaseException:
        server.kill()
        output, _ = server.communicate(timeout=10)
        print("[chaos] server output on failure:\n" + (output or "<none>"),
              file=sys.stderr, flush=True)
        raise
    print("[chaos] chaos smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
